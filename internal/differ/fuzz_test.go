package differ

// FuzzDifferential drives random fault trees through the full six-step
// pipeline under the differential harness: every portfolio engine, the
// BDD top-k oracle and the exact quantitative layer must agree on every
// generated instance. The fuzzer owns the generator parameters, so it
// explores tree shapes (gate mix, fan-in, sharing, voting thresholds)
// rather than raw bytes. Any reported divergence is a real bug in an
// engine, the encoder, or an oracle.
//
// Random voting-heavy instances can be genuinely hard, and the fuzz
// worker kills inputs that run long, so each input gets a tight budget
// (short per-engine timeout, bounded overall context) and instances
// that merely time out are skipped — only disagreement fails.
//
//	go test -fuzz=FuzzDifferential -fuzztime=30s ./internal/differ

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/sat"
)

func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), 8, 4, 40, 0, false)
	f.Add(int64(42), 12, 3, 60, 30, false)
	f.Add(int64(7), 5, 2, 20, 0, true)
	f.Add(int64(1234), 10, 5, 50, 100, false)
	// Deeply modular: no sharing and fan-in 2 make every gate a module,
	// driving the decomposed-vs-monolithic guard through nested plans.
	f.Add(int64(77), 10, 4, 50, 0, true)
	f.Fuzz(func(t *testing.T, seed int64, events, fanIn, andBias, votingFrac int, noSharing bool) {
		cfg := gen.Config{
			Events:     2 + abs(events)%11, // 2..12 basic events
			MaxFanIn:   2 + abs(fanIn)%4,   // 2..5
			AndBias:    float64(1+abs(andBias)%99) / 100,
			VotingFrac: float64(abs(votingFrac)%101) / 100,
			NoSharing:  noSharing,
			Seed:       seed,
		}
		// Whole-input budget well under the fuzz worker's hang
		// detector; per-engine timeout keeps one stubborn engine from
		// eating the whole budget.
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
		defer cancel()
		opts := Options{TopK: 2, Timeout: time.Second}
		rep, err := CheckRandom(ctx, cfg, opts)
		if err != nil {
			if errors.Is(err, sat.ErrInterrupted) || ctx.Err() != nil {
				t.Skipf("config %+v: too hard for fuzz budget: %v", cfg, err)
			}
			t.Fatalf("config %+v: %v", cfg, err)
		}
		if timedOutOnly(rep) {
			t.Skipf("config %+v: engine timeout within fuzz budget", cfg)
		}
		if !rep.OK() {
			minCfg, minRep := Shrink(ctx, cfg, opts)
			t.Fatalf("divergence for config %+v:\n%s\nminimized reproducer %+v:\n%s",
				cfg, rep, minCfg, minRep)
		}
	})
}

// timedOutOnly reports whether every divergence in rep stems from a
// solve hitting its per-engine timeout (the interrupted error shows up
// in the detail, whether from a single engine or the top-k
// enumeration) — a budget artefact under fuzzing, not a disagreement.
func timedOutOnly(rep *Report) bool {
	if rep.OK() {
		return false
	}
	for _, d := range rep.Divergences {
		if !strings.Contains(d.Detail, sat.ErrInterrupted.Error()) {
			return false
		}
	}
	return true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
