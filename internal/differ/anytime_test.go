package differ

import (
	"context"
	"testing"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/portfolio"
)

// interruptOnFirstModel cancels its sub-context as soon as the wrapped
// engine publishes an incumbent, forcing a FEASIBLE answer without
// depending on wall-clock deadlines.
type interruptOnFirstModel struct{ inner maxsat.ProgressSolver }

type cancelOnModel struct{ cancel context.CancelFunc }

func (p cancelOnModel) PublishModel(int64, []bool) { p.cancel() }
func (p cancelOnModel) PublishLower(int64)         {}
func (p cancelOnModel) BestKnown() (int64, bool)   { return 0, false }
func (p cancelOnModel) ProvenLower() int64         { return 0 }

func (s interruptOnFirstModel) Name() string { return "anytime" }

func (s interruptOnFirstModel) Solve(ctx context.Context, inst *cnf.WCNF) (maxsat.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return s.inner.SolveWithProgress(ctx, inst, cancelOnModel{cancel})
}

// fixedResult replays a canned Result — used to fabricate unsound
// anytime answers the harness must catch.
type fixedResult struct {
	name string
	res  maxsat.Result
}

func (s fixedResult) Name() string { return s.name }

func (s fixedResult) Solve(context.Context, *cnf.WCNF) (maxsat.Result, error) {
	return s.res, nil
}

func anytimePlusReference() []portfolio.Engine {
	return []portfolio.Engine{
		{Name: "anytime", Solver: interruptOnFirstModel{inner: &maxsat.LinearSU{}}},
		{Name: "linear-su", Solver: &maxsat.LinearSU{}},
	}
}

// TestCheckWCNFFeasibleSound: a genuine anytime answer (verified model,
// cost above the optimum, lower bound below it) must not be flagged —
// and must not be drafted as the comparison reference either.
func TestCheckWCNFFeasibleSound(t *testing.T) {
	// Hard (1 ∨ 2) ∧ (2 ∨ 3), softs ¬1/2, ¬2/3, ¬3/10: optimum 5.
	var inst cnf.WCNF
	inst.NumVars = 3
	inst.AddHard(1, 2)
	inst.AddHard(2, 3)
	inst.AddSoft(2, -1)
	inst.AddSoft(3, -2)
	inst.AddSoft(10, -3)

	rep, err := CheckWCNF(context.Background(), &inst, Options{Engines: anytimePlusReference()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("sound anytime answer flagged as divergence:\n%s", rep)
	}
	for _, e := range rep.Engines {
		if e.Err != "" {
			t.Errorf("engine %s errored: %s", e.Name, e.Err)
		}
	}
}

// TestCheckWCNFFeasibleUnsoundLowerBound: a FEASIBLE answer whose proven
// lower bound exceeds the true optimum is a soundness bug and must
// surface as a feasible-bound divergence.
func TestCheckWCNFFeasibleUnsoundLowerBound(t *testing.T) {
	// Single soft ¬1 of weight 4 under hard (1): optimum 4.
	var inst cnf.WCNF
	inst.NumVars = 1
	inst.AddHard(1)
	inst.AddSoft(4, -1)

	lying := fixedResult{name: "liar", res: maxsat.Result{
		Status:     maxsat.Feasible,
		Model:      []bool{false, true},
		Cost:       4,
		LowerBound: 7, // claims the optimum is ≥ 7 — impossible
	}}
	engines := []portfolio.Engine{
		{Name: "liar", Solver: lying},
		{Name: "linear-su", Solver: &maxsat.LinearSU{}},
	}
	rep, err := CheckWCNF(context.Background(), &inst, Options{Engines: engines})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Divergences {
		if d.Check == CheckFeasible && d.Engine == "liar" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unsound lower bound not flagged:\n%s", rep)
	}
}

// TestCheckTreeFeasibleAgainstOracle: on a full fault-tree check the
// anytime engine's decoded cut set must never beat the BDD oracle's
// MPMCS probability, and a sound one passes the whole harness.
func TestCheckTreeFeasibleAgainstOracle(t *testing.T) {
	rep, err := CheckTree(context.Background(), gen.FPS(), Options{Engines: anytimePlusReference()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("sound anytime tree answer flagged:\n%s", rep)
	}
}
