// Package differ is the differential-correctness harness: it runs every
// MaxSAT engine configuration of the Step-5 portfolio individually on
// the same instance, decodes each engine's answer, and cross-checks the
// results against one another and against two independent oracles — the
// BDD engine (Rauzy minimal-cut-set extraction plus exact best-set and
// top-k enumeration) and the quantitative layer (exact top-event
// probability via internal/quant).
//
// The portfolio design of the paper only works if every engine agrees
// on the optimum: a silently wrong engine corrupts the MPMCS answer the
// whole pipeline exists to produce, and the race would hide it whenever
// a correct engine happens to finish first. The differ removes the race
// and checks, for every engine:
//
//   - status agreement: all engines (and the BDD oracle) agree on
//     whether a cut set exists at all;
//   - optimum agreement: all engines report the same integer cost;
//   - model feasibility: the model satisfies every hard clause and its
//     recomputed soft cost equals the cost the engine reported;
//   - cut-set decoding: the falsified events form a minimal cut set of
//     the original tree;
//   - probability agreement: the decoded set's probability matches the
//     BDD oracle's exact maximum within tolerance, and never exceeds
//     the exact top-event probability;
//   - top-k agreement (optional): the MaxSAT blocking-clause ranking
//     matches the BDD best-first enumeration rank by rank;
//   - anytime soundness: a FEASIBLE (deadline-interrupted) answer's
//     model is feasible, its cost bounds the optimum from above, its
//     proven lower bound from below, and its decoded probability never
//     beats the BDD oracle's exact optimum.
//
// Disagreements are reported as Divergences, not errors: a divergence
// is the harness working, and the caller (cmd/ftdiff, the fuzz targets,
// CI) decides how to fail. Shrink minimizes a divergent random instance
// by walking the generator parameters down (see shrink.go).
package differ

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/fp"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/mcs"
	"mpmcs4fta/internal/portfolio"
	"mpmcs4fta/internal/quant"
)

// Check kinds, one per cross-check the harness performs.
const (
	// CheckEngineError marks an engine that failed outright (not a
	// cancellation).
	CheckEngineError = "engine-error"
	// CheckStatus marks disagreement on feasibility between engines, or
	// between the engines and the BDD oracle.
	CheckStatus = "status"
	// CheckCost marks two engines reporting different optimum costs.
	CheckCost = "cost"
	// CheckModelHard marks a model that violates a hard clause.
	CheckModelHard = "model-hard"
	// CheckModelCost marks a reported cost that differs from the cost
	// the model actually incurs on the instance.
	CheckModelCost = "model-cost"
	// CheckCutSet marks a decoded event set that does not trigger the
	// top event.
	CheckCutSet = "cutset"
	// CheckMinimality marks a decoded cut set with a redundant member.
	CheckMinimality = "minimality"
	// CheckProbability marks a decoded MPMCS probability that differs
	// from the BDD oracle's exact optimum.
	CheckProbability = "probability"
	// CheckQuantBound marks an MPMCS probability exceeding the exact
	// top-event probability — impossible for a coherent tree.
	CheckQuantBound = "quant-bound"
	// CheckFeasible marks an anytime (FEASIBLE) answer that contradicts
	// a proven optimum: its cost must bound the optimum from above and
	// its proven lower bound from below.
	CheckFeasible = "feasible-bound"
	// CheckTopK marks a rank at which the MaxSAT blocking-clause
	// enumeration and the BDD best-first enumeration disagree.
	CheckTopK = "topk"
	// CheckDecompose marks the modular-decomposition solve path
	// disagreeing with the monolithic path on status, cost or
	// probability.
	CheckDecompose = "decompose"
)

// ProbTolerance is the relative tolerance for probability comparisons
// against the BDD oracle; it matches the tolerance the core package
// uses when cross-checking MaxSAT against the BDD baseline.
const ProbTolerance = 1e-9

// DecomposeTolerance is the relative tolerance for the decomposed vs
// monolithic cross-check. It is looser than ProbTolerance because the
// two paths round −ln(p) to scaled integers per sub-instance vs once
// globally, so near-ties can resolve to cut sets whose probabilities
// differ by the rounding granularity (~1e-7 relative at DefaultScale).
const DecomposeTolerance = 1e-6

// Options configures a differential check. The zero value selects the
// full default portfolio, the default weight scale and no top-k pass.
type Options struct {
	// Engines are the portfolio members to cross-check; nil selects
	// portfolio.DefaultEngines().
	Engines []portfolio.Engine
	// Scale overrides core.DefaultScale for the Step-3 weight transform.
	Scale float64
	// PlaistedGreenbaum selects the polarity-aware Step-2 encoding.
	PlaistedGreenbaum bool
	// TopK, when positive, additionally cross-checks the first TopK
	// ranked cut sets (MaxSAT blocking-clause loop vs BDD best-first).
	TopK int
	// Timeout bounds each engine's solve (0 = none).
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Engines == nil {
		o.Engines = portfolio.DefaultEngines()
	}
	if fp.Zero(o.Scale) {
		o.Scale = core.DefaultScale
	}
	return o
}

func (o Options) coreOptions() core.Options {
	return core.Options{
		Engines:           o.Engines,
		Sequential:        true,
		Scale:             o.Scale,
		PlaistedGreenbaum: o.PlaistedGreenbaum,
	}
}

// Divergence is one disagreement between an engine and its peers or an
// oracle. Engine is the offending engine's name ("bdd" for the oracle
// side of a status disagreement, empty for whole-run checks like topk).
type Divergence struct {
	Check  string `json:"check"`
	Engine string `json:"engine,omitempty"`
	Detail string `json:"detail"`
}

func (d Divergence) String() string {
	if d.Engine == "" {
		return fmt.Sprintf("[%s] %s", d.Check, d.Detail)
	}
	return fmt.Sprintf("[%s] engine %s: %s", d.Check, d.Engine, d.Detail)
}

// EngineResult records one engine's independent answer.
type EngineResult struct {
	Name    string        `json:"name"`
	Status  string        `json:"status"`
	Cost    int64         `json:"cost"`
	Elapsed time.Duration `json:"elapsedNanos"`
	// CutSet is the decoded minimal cut set (tree checks only).
	CutSet []string `json:"cutSet,omitempty"`
	// Probability is the decoded set's joint probability (tree checks
	// only).
	Probability float64 `json:"probability,omitempty"`
	Err         string  `json:"err,omitempty"`
}

// Report is the outcome of one differential check.
type Report struct {
	// Name identifies the instance (tree name or "wcnf").
	Name    string         `json:"name"`
	Engines []EngineResult `json:"engines"`
	// OracleProbability is the BDD engine's exact MPMCS probability
	// (tree checks only; 0 when no cut set exists).
	OracleProbability float64 `json:"oracleProbability,omitempty"`
	// TopProbability is the exact top-event probability from
	// internal/quant (tree checks only).
	TopProbability float64      `json:"topProbability,omitempty"`
	Divergences    []Divergence `json:"divergences,omitempty"`
}

// OK reports whether every cross-check passed.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

func (r *Report) diverge(check, engine, format string, args ...interface{}) {
	r.Divergences = append(r.Divergences, Divergence{
		Check:  check,
		Engine: engine,
		Detail: fmt.Sprintf(format, args...),
	})
}

// String renders the report for humans: one line per engine, then one
// line per divergence.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", r.Name)
	if r.OK() {
		b.WriteString(" agreement")
	} else {
		fmt.Fprintf(&b, " %d divergence(s)", len(r.Divergences))
	}
	b.WriteByte('\n')
	for _, e := range r.Engines {
		fmt.Fprintf(&b, "  %-14s %-11s cost=%-10d %12s", e.Name, e.Status, e.Cost, e.Elapsed.Round(time.Microsecond))
		if len(e.CutSet) > 0 {
			fmt.Fprintf(&b, "  p=%.6g %v", e.Probability, e.CutSet)
		}
		if e.Err != "" {
			fmt.Fprintf(&b, "  err=%s", e.Err)
		}
		b.WriteByte('\n')
	}
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  DIVERGENCE %s\n", d)
	}
	return b.String()
}

// solveAll runs every engine individually (no race) on clones of the
// instance, recording per-engine results and engine-error divergences.
func solveAll(ctx context.Context, inst *cnf.WCNF, opts Options, r *Report) ([]maxsat.Result, error) {
	results := make([]maxsat.Result, len(opts.Engines))
	for i, engine := range opts.Engines {
		runCtx := ctx
		var cancel context.CancelFunc
		if opts.Timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
		}
		start := time.Now()
		res, err := engine.Solver.Solve(runCtx, inst.Clone())
		timedOut := runCtx.Err() != nil && ctx.Err() == nil
		if cancel != nil {
			cancel()
		}
		results[i] = res
		er := EngineResult{
			Name:    engine.Name,
			Status:  res.Status.String(),
			Cost:    res.Cost,
			Elapsed: time.Since(start),
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("differ: engine %s: %w", engine.Name, err)
			}
			er.Err = err.Error()
			if !timedOut {
				// A per-engine deadline interrupt with no incumbent is the
				// anytime contract working, not an engine bug.
				r.diverge(CheckEngineError, engine.Name, "solve failed: %v", err)
			}
		}
		r.Engines = append(r.Engines, er)
	}
	return results, nil
}

// checkInstanceAgreement performs the tree-independent cross-checks on
// the raw WCNF level: status agreement, cost agreement, and model
// feasibility/cost for every optimal engine.
func checkInstanceAgreement(inst *cnf.WCNF, opts Options, results []maxsat.Result, r *Report) {
	reference := -1 // first engine with a definitive, error-free answer
	for i := range results {
		if r.Engines[i].Err != "" || !results[i].Status.Definitive() {
			continue
		}
		if reference == -1 {
			reference = i
			continue
		}
		ref, cur := results[reference], results[i]
		if ref.Status != cur.Status {
			r.diverge(CheckStatus, opts.Engines[i].Name, "status %s, but engine %s found %s",
				cur.Status, opts.Engines[reference].Name, ref.Status)
			continue
		}
		if ref.Status == maxsat.Optimal && ref.Cost != cur.Cost {
			r.diverge(CheckCost, opts.Engines[i].Name, "optimum %d, but engine %s found %d",
				cur.Cost, opts.Engines[reference].Name, ref.Cost)
		}
	}
	// Anytime (FEASIBLE) answers cannot be compared for equality, but
	// they must bracket the reference: cost is an upper bound on the
	// optimum, the proven lower bound a lower one, and a feasible model
	// contradicts a proven-infeasible instance outright.
	if reference >= 0 {
		refName := opts.Engines[reference].Name
		for i, res := range results {
			if r.Engines[i].Err != "" || res.Status != maxsat.Feasible {
				continue
			}
			if results[reference].Status == maxsat.Infeasible {
				r.diverge(CheckStatus, opts.Engines[i].Name, "FEASIBLE model, but engine %s proved INFEASIBLE", refName)
				continue
			}
			opt := results[reference].Cost
			if res.Cost < opt {
				r.diverge(CheckFeasible, opts.Engines[i].Name, "anytime cost %d below optimum %d (engine %s)",
					res.Cost, opt, refName)
			}
			if res.LowerBound > opt {
				r.diverge(CheckFeasible, opts.Engines[i].Name, "proven lower bound %d exceeds optimum %d (engine %s)",
					res.LowerBound, opt, refName)
			}
		}
	}
	for i, res := range results {
		if r.Engines[i].Err != "" || (res.Status != maxsat.Optimal && res.Status != maxsat.Feasible) {
			continue
		}
		cost, err := inst.Cost(res.Model)
		if err != nil {
			r.diverge(CheckModelHard, opts.Engines[i].Name, "model infeasible: %v", err)
			continue
		}
		if cost != res.Cost {
			r.diverge(CheckModelCost, opts.Engines[i].Name, "reported cost %d, model costs %d", res.Cost, cost)
		}
	}
}

// CheckWCNF differentially checks a raw Weighted Partial MaxSAT
// instance: every engine must agree on feasibility and optimum cost,
// and every returned model must be feasible and cost what its engine
// claims. There is no tree, so the BDD and quantitative oracles do not
// apply.
func CheckWCNF(ctx context.Context, inst *cnf.WCNF, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("differ: invalid instance: %w", err)
	}
	r := &Report{Name: "wcnf"}
	results, err := solveAll(ctx, inst, opts, r)
	if err != nil {
		return nil, err
	}
	checkInstanceAgreement(inst, opts, results, r)
	return r, nil
}

// CheckTree runs the full differential harness on a fault tree: the
// six-step pipeline's Steps 1–4 build the shared instance, every engine
// solves it independently, and each answer is decoded and checked
// against the BDD top-k oracle and the exact top-event probability.
func CheckTree(ctx context.Context, tree *ft.Tree, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	steps, err := core.BuildSteps(tree, opts.coreOptions())
	if err != nil {
		return nil, fmt.Errorf("differ: build instance: %w", err)
	}
	r := &Report{Name: tree.Name()}
	results, err := solveAll(ctx, steps.Instance, opts, r)
	if err != nil {
		return nil, err
	}
	checkInstanceAgreement(steps.Instance, opts, results, r)

	// BDD oracle: exact maximum-probability minimal cut set.
	oracle, oracleErr := core.AnalyzeBDD(tree, opts.coreOptions())
	switch {
	case oracleErr == nil:
		r.OracleProbability = oracle.Probability
	case errors.Is(oracleErr, core.ErrNoCutSet) || errors.Is(oracleErr, core.ErrZeroProbability):
		// Feasibility cross-checked below; probability checks skipped.
	default:
		return nil, fmt.Errorf("differ: BDD oracle: %w", oracleErr)
	}

	// Quantitative oracle: exact P(top). Only meaningful when a cut set
	// exists.
	if oracleErr == nil {
		top, err := quant.TopEventProbability(tree)
		if err != nil {
			return nil, fmt.Errorf("differ: quant oracle: %w", err)
		}
		r.TopProbability = top
	}

	freeEvents := hasBoundaryProbabilities(tree)
	for i, res := range results {
		er := &r.Engines[i]
		if er.Err != "" {
			continue
		}
		if res.Status == maxsat.Infeasible {
			if oracleErr == nil {
				r.diverge(CheckStatus, er.Name, "INFEASIBLE, but BDD oracle found cut set with p=%g", oracle.Probability)
			}
			continue
		}
		if res.Status != maxsat.Optimal && res.Status != maxsat.Feasible {
			continue
		}
		if errors.Is(oracleErr, core.ErrNoCutSet) {
			r.diverge(CheckStatus, er.Name, "%s, but BDD oracle reports the top event cannot occur", res.Status)
			continue
		}
		set := decodeFailedSet(steps, res.Model)
		er.CutSet = set
		er.Probability = setProbability(tree, set)

		isCut, err := mcs.IsCutSet(tree, set)
		if err != nil {
			return nil, fmt.Errorf("differ: decode engine %s: %w", er.Name, err)
		}
		if !isCut {
			r.diverge(CheckCutSet, er.Name, "decoded set %v does not trigger the top event", set)
			continue
		}
		// With every weight positive, a MaxSAT optimum is necessarily
		// minimal; free (p=1) and impossible (p=0) events void that
		// argument, so the minimality check only applies without them.
		// An anytime model is merely feasible, so its failed set is a cut
		// set but need not be minimal.
		if !freeEvents && res.Status == maxsat.Optimal {
			minimal, err := mcs.IsMinimalCutSet(tree, set)
			if err != nil {
				return nil, fmt.Errorf("differ: minimality of engine %s: %w", er.Name, err)
			}
			if !minimal {
				r.diverge(CheckMinimality, er.Name, "decoded cut set %v has a redundant member", set)
				continue
			}
		}
		if oracleErr == nil {
			if res.Status == maxsat.Optimal {
				if !probEqual(er.Probability, oracle.Probability) {
					r.diverge(CheckProbability, er.Name, "decoded p=%g, BDD oracle optimum p=%g (set %v)",
						er.Probability, oracle.Probability, set)
				}
			} else if er.Probability > oracle.Probability*(1+ProbTolerance)+1e-300 {
				r.diverge(CheckFeasible, er.Name, "anytime p=%g exceeds BDD oracle optimum p=%g (set %v)",
					er.Probability, oracle.Probability, set)
			}
			if er.Probability > r.TopProbability*(1+ProbTolerance)+1e-300 {
				r.diverge(CheckQuantBound, er.Name, "decoded p=%g exceeds exact P(top)=%g",
					er.Probability, r.TopProbability)
			}
		}
	}

	if opts.TopK > 0 && oracleErr == nil {
		checkTopK(ctx, tree, opts, r)
	}
	checkDecomposition(ctx, tree, opts, r)
	return r, nil
}

// checkDecomposition is the guard for the modular solve path: the
// planner/scheduler pipeline and the monolithic single-instance solve
// must agree on feasibility, cost and probability on every tree. The
// module-size floor is forced down so even small fuzz trees exercise
// the quotient construction.
func checkDecomposition(ctx context.Context, tree *ft.Tree, opts Options, r *Report) {
	copts := opts.coreOptions()
	copts.Timeout = opts.Timeout
	copts.DecomposeMinEvents = 2
	dec, decErr := core.Analyze(ctx, tree, copts)
	copts.NoDecompose = true
	mono, monoErr := core.Analyze(ctx, tree, copts)

	switch {
	case decErr != nil && monoErr != nil:
		// Both paths failed: either the top event cannot occur (both
		// ErrNoCutSet — agreement) or the budget ran out for both (a
		// fuzz artefact, not a disagreement).
		return
	case decErr != nil:
		if ctx.Err() != nil {
			return
		}
		r.diverge(CheckDecompose, "", "decomposed solve failed (%v) but monolithic found p=%g", decErr, mono.Probability)
		return
	case monoErr != nil:
		if ctx.Err() != nil {
			return
		}
		r.diverge(CheckDecompose, "", "monolithic solve failed (%v) but decomposed found p=%g", monoErr, dec.Probability)
		return
	}

	if dec.Status == "OPTIMAL" && mono.Status == "OPTIMAL" {
		if !fp.EqTol(dec.Probability, mono.Probability, DecomposeTolerance) {
			r.diverge(CheckDecompose, "", "decomposed p=%g (%v), monolithic p=%g (%v)",
				dec.Probability, dec.CutSetIDs(), mono.Probability, mono.CutSetIDs())
		}
		if !fp.EqTol(dec.LogCost, mono.LogCost, DecomposeTolerance) {
			r.diverge(CheckDecompose, "", "decomposed logCost=%g, monolithic logCost=%g", dec.LogCost, mono.LogCost)
		}
		return
	}
	// An anytime (FEASIBLE) answer on either side is a budget artefact,
	// but a decomposed incumbent must still never beat a proven
	// monolithic optimum.
	if mono.Status == "OPTIMAL" && dec.Probability > mono.Probability*(1+DecomposeTolerance) {
		r.diverge(CheckDecompose, "", "decomposed anytime p=%g exceeds monolithic optimum p=%g",
			dec.Probability, mono.Probability)
	}
}

// checkTopK cross-checks the MaxSAT blocking-clause ranking against the
// BDD best-first enumeration, rank by rank, on count and probability.
func checkTopK(ctx context.Context, tree *ft.Tree, opts Options, r *Report) {
	copts := opts.coreOptions()
	copts.Timeout = opts.Timeout
	viaSAT, err := core.AnalyzeTopK(ctx, tree, opts.TopK, copts)
	if err != nil {
		if errors.Is(err, core.ErrNoAnswer) {
			// The deadline struck before round 0 produced anything — a
			// budget artefact of anytime mode, not a disagreement.
			return
		}
		r.diverge(CheckTopK, "", "MaxSAT top-%d enumeration failed: %v", opts.TopK, err)
		return
	}
	viaBDD, err := core.AnalyzeTopKBDD(tree, opts.TopK, copts)
	if err != nil {
		r.diverge(CheckTopK, "", "BDD top-%d enumeration failed: %v", opts.TopK, err)
		return
	}
	if len(viaSAT) != len(viaBDD) {
		r.diverge(CheckTopK, "", "MaxSAT enumerated %d cut sets, BDD oracle %d", len(viaSAT), len(viaBDD))
		return
	}
	for rank := range viaSAT {
		if !probEqual(viaSAT[rank].Probability, viaBDD[rank].Probability) {
			r.diverge(CheckTopK, "", "rank %d: MaxSAT p=%g (%v), BDD p=%g (%v)",
				rank+1, viaSAT[rank].Probability, viaSAT[rank].CutSetIDs(),
				viaBDD[rank].Probability, viaBDD[rank].CutSetIDs())
		}
	}
}

// decodeFailedSet extracts the failed events (falsified y variables)
// from a model, sorted for deterministic reporting.
func decodeFailedSet(steps *core.Steps, model []bool) []string {
	var set []string
	for _, w := range steps.Weights {
		y := steps.Encoding.VarOf[w.ID]
		if y < len(model) && !model[y] {
			set = append(set, w.ID)
		}
	}
	sort.Strings(set)
	return set
}

// setProbability is the joint probability of the set's events failing
// (independent events).
func setProbability(tree *ft.Tree, set []string) float64 {
	p := 1.0
	for _, id := range set {
		p *= tree.Event(id).Prob
	}
	return p
}

// hasBoundaryProbabilities reports whether any event has p=0 or p=1 —
// the cases where a MaxSAT optimum need not decode to a minimal set.
func hasBoundaryProbabilities(tree *ft.Tree) bool {
	for _, e := range tree.Events() {
		if fp.Zero(e.Prob) || fp.One(e.Prob) {
			return true
		}
	}
	return false
}

// probEqual compares probabilities with the oracle tolerance.
func probEqual(a, b float64) bool {
	return fp.EqTol(a, b, ProbTolerance)
}
