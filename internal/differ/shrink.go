package differ

import (
	"context"

	"mpmcs4fta/internal/gen"
)

// shrinkSeedTries is how many derived seeds each shrink candidate is
// retried with: a divergence that vanishes under the exact original
// seed often reappears under a neighbouring one at the smaller size.
const shrinkSeedTries = 6

// CheckRandom generates the seeded random tree described by cfg and
// runs the full differential harness on it.
func CheckRandom(ctx context.Context, cfg gen.Config, opts Options) (*Report, error) {
	tree, err := gen.Random(cfg)
	if err != nil {
		return nil, err
	}
	return CheckTree(ctx, tree, opts)
}

// Shrink minimizes a divergent generator configuration: starting from
// cfg, it greedily walks the generator parameters down (fewer events,
// smaller fan-in, no voting gates, no shared subtrees), accepting a
// candidate whenever the generated tree still produces a divergence
// under some derived seed. The returned config is a local minimum — no
// single further reduction diverges — and the returned report is the
// divergent run at that minimum.
//
// When cfg itself does not diverge (or generation fails), Shrink
// returns cfg and a nil report: there is nothing to reproduce.
func Shrink(ctx context.Context, cfg gen.Config, opts Options) (gen.Config, *Report) {
	report := diverges(ctx, cfg, opts)
	if report == nil {
		return cfg, nil
	}
	for {
		smaller, rep := shrinkStep(ctx, cfg, opts)
		if rep == nil {
			return cfg, report
		}
		cfg, report = smaller, rep
	}
}

// shrinkStep tries every single-parameter reduction of cfg and returns
// the first that still diverges, or a nil report when none does.
func shrinkStep(ctx context.Context, cfg gen.Config, opts Options) (gen.Config, *Report) {
	for _, candidate := range reductions(cfg) {
		if rep := divergesAnySeed(ctx, candidate, opts); rep != nil {
			return candidate, rep
		}
	}
	return cfg, nil
}

// reductions lists the single-step parameter reductions of cfg, most
// aggressive first. Fields whose zero value means "default" (AndBias,
// MinProb, MaxProb) are left alone: zeroing them would not shrink the
// instance, only change its flavour.
func reductions(cfg gen.Config) []gen.Config {
	var out []gen.Config
	if half := cfg.Events / 2; half >= 2 && half < cfg.Events {
		c := cfg
		c.Events = half
		out = append(out, c)
	}
	if cfg.Events > 2 {
		c := cfg
		c.Events--
		out = append(out, c)
	}
	if cfg.VotingFrac > 0 {
		c := cfg
		c.VotingFrac = 0
		out = append(out, c)
	}
	if !cfg.NoSharing {
		c := cfg
		c.NoSharing = true
		out = append(out, c)
	}
	if cfg.MaxFanIn > 2 {
		c := cfg
		c.MaxFanIn = 2
		out = append(out, c)
	}
	return out
}

// divergesAnySeed checks the candidate under its own seed and a few
// deterministically derived ones, returning the first divergent report.
func divergesAnySeed(ctx context.Context, cfg gen.Config, opts Options) *Report {
	for i := 0; i < shrinkSeedTries; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		if rep := diverges(ctx, c, opts); rep != nil {
			return rep
		}
		if ctx.Err() != nil {
			return nil
		}
	}
	return nil
}

// diverges runs the harness on cfg's tree and returns the report iff it
// contains at least one divergence. Generation or harness errors count
// as non-divergent: the shrink loop must never trade a real engine
// disagreement for a mere setup failure.
func diverges(ctx context.Context, cfg gen.Config, opts Options) *Report {
	rep, err := CheckRandom(ctx, cfg, opts)
	if err != nil || rep.OK() {
		return nil
	}
	return rep
}
