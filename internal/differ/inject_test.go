package differ

// Divergence-injection tests: each cross-check of the harness is
// exercised by pairing an honest engine with a deliberately corrupted
// one and asserting that exactly the expected check fires. If a check
// here stops firing, the harness has gone blind to that bug class.

import (
	"context"
	"testing"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/portfolio"
)

// mutantSolver wraps a real engine and corrupts its optimal results.
type mutantSolver struct {
	inner  maxsat.Solver
	mutate func(inst *cnf.WCNF, res *maxsat.Result)
}

func (m *mutantSolver) Name() string { return "mutant" }

func (m *mutantSolver) Solve(ctx context.Context, inst *cnf.WCNF) (maxsat.Result, error) {
	res, err := m.inner.Solve(ctx, inst.Clone())
	if err == nil && res.Status == maxsat.Optimal {
		m.mutate(inst, &res)
	}
	return res, err
}

// forcedSolver solves the instance with extra hard unit clauses: the
// model stays feasible for the original hards, but the decoded event
// set is a strict superset of a minimal cut set.
type forcedSolver struct {
	inner maxsat.Solver
	force []cnf.Lit
}

func (f *forcedSolver) Name() string { return "mutant" }

func (f *forcedSolver) Solve(ctx context.Context, inst *cnf.WCNF) (maxsat.Result, error) {
	augmented := inst.Clone()
	for _, l := range f.force {
		augmented.AddHard(l)
	}
	return f.inner.Solve(ctx, augmented)
}

// failingSolver reports every instance infeasible.
type failingSolver struct{}

func (failingSolver) Name() string { return "mutant" }

func (failingSolver) Solve(context.Context, *cnf.WCNF) (maxsat.Result, error) {
	return maxsat.Result{Status: maxsat.Infeasible}, nil
}

func TestInjectedDivergencesFire(t *testing.T) {
	ctx := context.Background()
	tree := gen.FPS()

	// The harness builds its instance with the same deterministic
	// variable order, so VarOf from an identical build addresses the
	// models the stubs will see.
	steps, err := core.BuildSteps(tree, core.Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	varOf := steps.Encoding.VarOf

	cases := []struct {
		name   string
		mutant maxsat.Solver
		want   string // divergence kind that must fire
	}{
		{
			name: "cost off by one",
			mutant: &mutantSolver{inner: &maxsat.LinearSU{}, mutate: func(_ *cnf.WCNF, res *maxsat.Result) {
				res.Cost++
			}},
			want: CheckModelCost,
		},
		{
			name: "cost off by one disagrees with peers",
			mutant: &mutantSolver{inner: &maxsat.LinearSU{}, mutate: func(_ *cnf.WCNF, res *maxsat.Result) {
				res.Cost--
			}},
			want: CheckCost,
		},
		{
			name: "infeasible model",
			mutant: &mutantSolver{inner: &maxsat.LinearSU{}, mutate: func(inst *cnf.WCNF, res *maxsat.Result) {
				// Falsify every literal of the first hard clause.
				for _, l := range inst.Hard[0] {
					res.Model[l.Var()] = !l.Pos()
				}
			}},
			want: CheckModelHard,
		},
		{
			name: "non-minimal cut set",
			mutant: &forcedSolver{inner: &maxsat.LinearSU{}, force: []cnf.Lit{
				// Force x1, x2 and x3 to fail: {x1,x2,x3} strictly
				// contains the minimal cut sets {x1,x2} and {x3}.
				-cnf.Lit(varOf["x1"]),
				-cnf.Lit(varOf["x2"]),
				-cnf.Lit(varOf["x3"]),
			}},
			want: CheckMinimality,
		},
		{
			name:   "status disagreement",
			mutant: failingSolver{},
			want:   CheckStatus,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engines := []portfolio.Engine{
				{Name: "honest", Solver: &maxsat.WMSU1{}},
				{Name: "mutant", Solver: tc.mutant},
			}
			rep, err := CheckTree(ctx, tree, Options{Engines: engines})
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK() {
				t.Fatalf("corrupted engine went undetected:\n%s", rep)
			}
			fired := map[string]bool{}
			for _, d := range rep.Divergences {
				fired[d.Check] = true
				if d.Engine == "honest" {
					t.Errorf("honest engine blamed: %s", d)
				}
			}
			if !fired[tc.want] {
				t.Errorf("check %q did not fire; got:\n%s", tc.want, rep)
			}
		})
	}
}

// TestInjectedWCNFDivergence: the raw-WCNF entry point catches a cost
// lie without any tree-side oracle.
func TestInjectedWCNFDivergence(t *testing.T) {
	inst := &cnf.WCNF{}
	inst.AddHard(1, 2)
	inst.AddSoft(5, 1)
	inst.AddSoft(3, 2)
	engines := []portfolio.Engine{
		{Name: "honest", Solver: &maxsat.WMSU1{}},
		{Name: "mutant", Solver: &mutantSolver{inner: &maxsat.LinearSU{}, mutate: func(_ *cnf.WCNF, res *maxsat.Result) {
			res.Cost++
		}}},
	}
	rep, err := CheckWCNF(context.Background(), inst, Options{Engines: engines})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("cost lie went undetected on raw WCNF")
	}
}

// TestShrinkNonDivergent: a healthy configuration shrinks to itself
// with no reproducer.
func TestShrinkNonDivergent(t *testing.T) {
	cfg := gen.Config{Events: 8, Seed: 3}
	got, rep := Shrink(context.Background(), cfg, Options{})
	if rep != nil {
		t.Fatalf("unexpected reproducer:\n%s", rep)
	}
	if got != cfg {
		t.Errorf("config changed without divergence: %+v", got)
	}
}

// TestShrinkMinimizesReproducer: with an always-lying engine in the
// portfolio, the shrink loop walks the generator parameters down to a
// local minimum that still diverges.
func TestShrinkMinimizesReproducer(t *testing.T) {
	engines := []portfolio.Engine{
		{Name: "honest", Solver: &maxsat.WMSU1{}},
		{Name: "mutant", Solver: &mutantSolver{inner: &maxsat.LinearSU{}, mutate: func(_ *cnf.WCNF, res *maxsat.Result) {
			res.Cost++
		}}},
	}
	cfg := gen.Config{Events: 24, MaxFanIn: 5, VotingFrac: 0.3, Seed: 7}
	got, rep := Shrink(context.Background(), cfg, Options{Engines: engines})
	if rep == nil {
		t.Fatal("divergent config produced no reproducer")
	}
	if rep.OK() {
		t.Fatal("reproducer report has no divergence")
	}
	if got.Events != 2 {
		t.Errorf("events not minimized: got %d, want 2", got.Events)
	}
	if !got.NoSharing || got.VotingFrac != 0 {
		t.Errorf("structure not minimized: %+v", got)
	}
	// The minimum must be stable: every further reduction agrees.
	for _, smaller := range reductions(got) {
		if r := divergesAnySeed(context.Background(), smaller, Options{Engines: engines}); r == nil {
			continue
		}
		t.Errorf("shrink stopped early: %+v still diverges", smaller)
	}
}
