package portfolio

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/maxsat"
)

// hardVertexCover encodes minimum vertex cover of the cycle C_n (hard
// (u ∨ v) per edge, soft (¬v) of weight 1 per vertex): optimum (n+1)/2
// for odd n, far beyond what any engine finishes in a few milliseconds
// once n reaches the hundreds.
func hardVertexCover(n int) *cnf.WCNF {
	var w cnf.WCNF
	w.NumVars = n
	for v := 1; v <= n; v++ {
		w.AddHard(cnf.Lit(v), cnf.Lit(v%n+1))
	}
	for v := 1; v <= n; v++ {
		w.AddSoft(1, -cnf.Lit(v))
	}
	return &w
}

// TestSolveDeadlineAnytime is the tentpole's acceptance scenario: a
// hard instance under a 100ms deadline must yield a sound anytime
// answer — model verified against the instance, finite optimality gap,
// no error, no empty result — and every goroutine must be reaped before
// Solve returns.
func TestSolveDeadlineAnytime(t *testing.T) {
	const n, optimum = 301, 151
	inst := hardVertexCover(n)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, report, err := Solve(ctx, inst, DefaultEngines())
	if err != nil {
		t.Fatalf("deadline run must synthesize an anytime answer, got error: %v", err)
	}
	if res.Status != maxsat.Feasible && res.Status != maxsat.Optimal {
		t.Fatalf("status %v, want FEASIBLE (or cooperatively-proven OPTIMAL)", res.Status)
	}
	if res.Model == nil {
		t.Fatal("anytime answer carries no model")
	}
	cost, cerr := inst.Cost(res.Model)
	if cerr != nil {
		t.Fatalf("anytime model violates a hard clause: %v", cerr)
	}
	if cost != res.Cost {
		t.Fatalf("reported cost %d, model costs %d", res.Cost, cost)
	}
	if res.Cost < optimum {
		t.Fatalf("anytime cost %d beats the true optimum %d", res.Cost, optimum)
	}
	if res.LowerBound > optimum {
		t.Fatalf("proven lower bound %d exceeds the true optimum %d", res.LowerBound, optimum)
	}
	if gap := res.Gap(); gap < 0 {
		t.Fatalf("gap %d, want finite (cost %d, lb %d)", gap, res.Cost, res.LowerBound)
	}
	if report.Winner == "" {
		t.Error("no winner attributed for the anytime answer")
	}
	if report.WinnerReport() == nil {
		t.Error("WinnerReport missing for the anytime winner")
	}

	// Solve awaits its engines before returning; allow the runtime a
	// moment to retire exiting goroutines, then require no leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked past Solve: %d before, %d after", before, after)
	}
}

// TestSolveDeadlineNoIncumbent: when every engine dies of the parent
// deadline with nothing to report, Solve must return the parent
// context's error (wrapped) and classify the engines as cancelled, not
// failed.
func TestSolveDeadlineNoIncumbent(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	engines := []Engine{
		{Name: "slow-1", Solver: slowSolver{}},
		{Name: "slow-2", Solver: slowSolver{}},
	}
	_, report, err := Solve(ctx, smallInstance(), engines)
	if err == nil {
		t.Fatal("expected an error when no engine produced anything")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error should wrap the parent deadline: %v", err)
	}
	if !errors.Is(err, ErrNoAnswer) {
		t.Errorf("error should wrap ErrNoAnswer: %v", err)
	}
	for _, rep := range report.Engines {
		if !rep.Cancelled {
			t.Errorf("engine %s classified as failed, want cancelled: %+v", rep.Name, rep)
		}
	}
}

// publishingSolver is a fake cooperative engine: it publishes a fixed
// model and/or lower bound, then blocks until the race cancels it and
// returns its partial answer.
type publishingSolver struct {
	name  string
	cost  int64
	model []bool
	lower int64
}

var _ maxsat.ProgressSolver = (*publishingSolver)(nil)

func (p *publishingSolver) Name() string { return p.name }

func (p *publishingSolver) Solve(ctx context.Context, inst *cnf.WCNF) (maxsat.Result, error) {
	return p.SolveWithProgress(ctx, inst, nil)
}

func (p *publishingSolver) SolveWithProgress(ctx context.Context, _ *cnf.WCNF, prog maxsat.Progress) (maxsat.Result, error) {
	if prog != nil {
		if p.model != nil {
			prog.PublishModel(p.cost, p.model)
		}
		if p.lower > 0 {
			prog.PublishLower(p.lower)
		}
	}
	<-ctx.Done()
	if p.model != nil {
		return maxsat.Result{Status: maxsat.Feasible, Model: p.model, Cost: p.cost, LowerBound: p.lower}, nil
	}
	return maxsat.Result{LowerBound: p.lower}, ctx.Err()
}

// TestSolveCooperativeBoundsClose: one engine holds the optimal model,
// another proves the matching lower bound; neither alone is definitive,
// but the shared bound manager closes the race and Solve synthesizes a
// cooperatively-proven Optimal.
func TestSolveCooperativeBoundsClose(t *testing.T) {
	// smallInstance optimum: x1=x2=true, x3=false, cost 5.
	model := []bool{false, true, true, false}
	engines := []Engine{
		{Name: "modeler", Solver: &publishingSolver{name: "modeler", cost: 5, model: model}},
		{Name: "prover", Solver: &publishingSolver{name: "prover", lower: 5}},
	}
	res, report, err := Solve(context.Background(), smallInstance(), engines)
	if err != nil {
		t.Fatalf("cooperative close returned error: %v", err)
	}
	if res.Status != maxsat.Optimal || res.Cost != 5 || res.LowerBound != 5 {
		t.Fatalf("got %v cost %d lb %d, want OPTIMAL 5/5", res.Status, res.Cost, res.LowerBound)
	}
	if report.Winner != "modeler" {
		t.Errorf("winner %q, want the incumbent holder", report.Winner)
	}
	if !report.Coop.RaceClosedByBounds {
		t.Error("Coop.RaceClosedByBounds not set")
	}
	if report.Coop.ModelsPublished == 0 || report.Coop.LowerBoundsPublished == 0 {
		t.Errorf("cooperative traffic not recorded: %+v", report.Coop)
	}
	for _, rep := range report.Engines {
		if rep.Completed {
			t.Errorf("engine %s marked completed without a definitive answer", rep.Name)
		}
		if !rep.Cancelled || !strings.Contains(rep.Err, "shared bounds") {
			t.Errorf("engine %s should be cancelled by the bounds close: %+v", rep.Name, rep)
		}
	}
}

// TestSolveDeadlineStressNoBoundRaise runs short-deadline cooperative
// races over a spread of instances: a budget bound being raised (the
// bug class the lockstep curBound mirroring prevents) would surface
// here as a "tighten bound"/"cannot raise" engine error.
func TestSolveDeadlineStressNoBoundRaise(t *testing.T) {
	for _, n := range []int{51, 101, 151, 201, 301} {
		inst := hardVertexCover(n)
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		res, report, err := Solve(ctx, inst, DefaultEngines())
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("C_%d: unexpected error: %v", n, err)
		}
		for _, rep := range report.Engines {
			if strings.Contains(rep.Err, "bound") && !strings.Contains(rep.Err, "shared bounds") {
				t.Fatalf("C_%d: engine %s hit a budget-bound error: %s", n, rep.Name, rep.Err)
			}
		}
		if err == nil && res.Model != nil {
			if cost, cerr := inst.Cost(res.Model); cerr != nil || cost != res.Cost {
				t.Fatalf("C_%d: unsound anytime model: cost %d vs %d, err %v", n, cost, res.Cost, cerr)
			}
		}
	}
}
