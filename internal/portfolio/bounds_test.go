package portfolio

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBoundsMonotone(t *testing.T) {
	b := NewBounds(nil)
	if _, ok := b.BestKnown(); ok {
		t.Error("empty manager reports an incumbent")
	}
	a := b.ForEngine("a")
	c := b.ForEngine("c")

	a.PublishModel(10, []bool{false, true})
	a.PublishModel(12, nil) // worse: must not replace the incumbent
	c.PublishModel(7, []bool{false, false})
	if ub, ok := b.BestKnown(); !ok || ub != 7 {
		t.Errorf("BestKnown = %d, %v; want 7, true", ub, ok)
	}
	if owner, cost, _, ok := b.BestModel(); !ok || owner != "c" || cost != 7 {
		t.Errorf("BestModel = %s/%d/%v; want c/7/true", owner, cost, ok)
	}

	a.PublishLower(1)
	c.PublishLower(5)
	a.PublishLower(3) // lower than the global bound: must be ignored
	if lb := b.ProvenLower(); lb != 5 {
		t.Errorf("ProvenLower = %d, want 5", lb)
	}

	tr := b.Traffic()
	if tr.ModelsPublished != 3 || tr.ModelsImproved != 2 {
		t.Errorf("model traffic %d/%d, want 3/2", tr.ModelsPublished, tr.ModelsImproved)
	}
	if tr.LowerBoundsPublished != 3 || tr.LowerBoundsImproved != 2 {
		t.Errorf("lower-bound traffic %d/%d, want 3/2", tr.LowerBoundsPublished, tr.LowerBoundsImproved)
	}
	if b.Closed() || tr.RaceClosedByBounds {
		t.Error("bounds closed although lb 5 < ub 7")
	}
}

func TestBoundsMeetFiresOnClose(t *testing.T) {
	var fired int32
	b := NewBounds(func() { atomic.AddInt32(&fired, 1) })
	p := b.ForEngine("e")

	p.PublishLower(5) // no incumbent yet: cannot close
	if b.Closed() {
		t.Fatal("closed without an upper bound")
	}
	p.PublishModel(5, []bool{})
	if !b.Closed() {
		t.Fatal("lb == ub did not close the race")
	}
	if got := atomic.LoadInt32(&fired); got != 1 {
		t.Fatalf("onClose fired %d times, want 1", got)
	}
	// Further publications keep it closed and never re-fire.
	p.PublishLower(9)
	p.PublishModel(4, []bool{})
	if got := atomic.LoadInt32(&fired); got != 1 {
		t.Fatalf("onClose re-fired: %d", got)
	}
	if !b.Traffic().RaceClosedByBounds {
		t.Error("RaceClosedByBounds not recorded")
	}
}

// TestBoundsConcurrent hammers the manager from many goroutines (run
// under -race in CI): the final incumbent must be the global minimum,
// the final lower bound the global maximum, and the close callback must
// fire exactly once.
func TestBoundsConcurrent(t *testing.T) {
	var fired int32
	b := NewBounds(func() { atomic.AddInt32(&fired, 1) })
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		p := b.ForEngine(string(rune('a' + g)))
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Costs descend toward 100, lower bounds ascend toward 100,
				// so the bounds meet mid-run.
				p.PublishModel(int64(100+((g*perG+i)%400)), nil)
				p.PublishLower(int64(100 - ((g*perG + i) % 100)))
				p.BestKnown()
				p.ProvenLower()
			}
			p.PublishLower(100)
		}(g)
	}
	wg.Wait()
	if ub, ok := b.BestKnown(); !ok || ub != 100 {
		t.Errorf("final incumbent %d, want 100", ub)
	}
	if lb := b.ProvenLower(); lb != 100 {
		t.Errorf("final lower bound %d, want 100", lb)
	}
	if !b.Closed() {
		t.Error("bounds met but race not closed")
	}
	if got := atomic.LoadInt32(&fired); got != 1 {
		t.Errorf("onClose fired %d times, want exactly 1", got)
	}
}
