package portfolio

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/maxsat"
)

// genInstance is a quick.Generator for small random WPMS instances.
type genInstance struct {
	W *cnf.WCNF
}

// Generate implements quick.Generator.
func (genInstance) Generate(r *rand.Rand, _ int) reflect.Value {
	numVars := 3 + r.Intn(6)
	w := &cnf.WCNF{NumVars: numVars}
	for i := r.Intn(2 * numVars); i > 0; i-- {
		a := cnf.Lit(r.Intn(numVars) + 1)
		b := cnf.Lit(r.Intn(numVars) + 1)
		if r.Intn(2) == 0 {
			a = -a
		}
		if r.Intn(2) == 0 {
			b = -b
		}
		w.AddHard(a, b)
	}
	for v := 1; v <= numVars; v++ {
		w.AddSoft(int64(1+r.Intn(50)), -cnf.Lit(v))
	}
	return reflect.ValueOf(genInstance{W: w})
}

func portfolioQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(179))}
}

// TestQuickParallelMatchesSequential: the racing portfolio and the
// deterministic sequential runner always agree on status and cost.
func TestQuickParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance) bool {
		par, _, err1 := Solve(ctx, g.W, DefaultEngines())
		seq, _, err2 := SolveSequential(ctx, g.W, DefaultEngines())
		if err1 != nil || err2 != nil {
			return false
		}
		if par.Status != seq.Status {
			return false
		}
		return par.Status != maxsat.Optimal || par.Cost == seq.Cost
	}
	if err := quick.Check(property, portfolioQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickReportConsistency: the winner is recorded, completed, and
// error-free; every engine appears exactly once in the report.
func TestQuickReportConsistency(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance) bool {
		_, report, err := Solve(ctx, g.W, DefaultEngines())
		if err != nil {
			return false
		}
		if len(report.Engines) != len(DefaultEngines()) {
			return false
		}
		winnerSeen := false
		for _, rep := range report.Engines {
			if rep.Name == report.Winner {
				winnerSeen = true
				if !rep.Completed || rep.Err != "" {
					return false
				}
			}
		}
		return winnerSeen
	}
	if err := quick.Check(property, portfolioQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickInstanceNotMutated: solving never mutates the caller's
// instance (engines work on clones).
func TestQuickInstanceNotMutated(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance) bool {
		before := g.W.Clone()
		if _, _, err := Solve(ctx, g.W, DefaultEngines()); err != nil {
			return false
		}
		if g.W.NumVars != before.NumVars ||
			len(g.W.Hard) != len(before.Hard) ||
			len(g.W.Soft) != len(before.Soft) {
			return false
		}
		for i := range before.Hard {
			if !reflect.DeepEqual(g.W.Hard[i], before.Hard[i]) {
				return false
			}
		}
		for i := range before.Soft {
			if !reflect.DeepEqual(g.W.Soft[i], before.Soft[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, portfolioQuickConfig()); err != nil {
		t.Error(err)
	}
}
