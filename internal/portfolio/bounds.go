package portfolio

import (
	"sync"

	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/obs"
)

// Bounds is the shared bound manager of a cooperative portfolio race:
// one global incumbent (the cheapest published model and its cost — the
// upper bound on the optimum) and one global proven lower bound,
// written and read concurrently by every engine through the
// maxsat.Progress views handed out by ForEngine. When the lower bound
// meets the upper bound the optimum is pinned, so the manager fires its
// close callback once — the portfolio uses it to cancel the remaining
// engines and synthesize an Optimal answer no single member proved
// alone.
//
// Bounds only ever tightens: the upper bound monotonically decreases,
// the lower bound monotonically increases. In particular an engine
// reading BestKnown can never be handed a looser bound than one it saw
// before — which is what makes feeding the value into
// sat.SetBudgetBound (which rejects raising) safe.
type Bounds struct {
	mu      sync.Mutex
	ubSet   bool             // guarded by mu
	ub      int64            // guarded by mu
	model   []bool           // guarded by mu
	owner   string           // engine that published the incumbent; guarded by mu
	lb      int64            // guarded by mu
	closed  bool             // guarded by mu
	onClose func()           // guarded by mu
	traffic obs.BoundTraffic // guarded by mu

	// bus receives a BoundImproved event for every actual tightening.
	// Events are published while holding mu — the bus has its own
	// independent lock and never calls back — so the event stream is
	// monotone: UB frames never increase, LB frames never decrease,
	// even with every engine publishing concurrently.
	bus *obs.EventBus
}

// NewBounds returns an empty bound manager. onClose (may be nil) is
// called exactly once, without the internal lock held, when the proven
// lower bound reaches the incumbent's cost.
func NewBounds(onClose func()) *Bounds {
	return &Bounds{onClose: onClose}
}

// SetEventBus attaches a live-telemetry bus (nil detaches). Call
// before the race starts; publications are not synchronised with it.
func (b *Bounds) SetEventBus(bus *obs.EventBus) { b.bus = bus }

// publishModel records a feasible model if it improves the incumbent.
func (b *Bounds) publishModel(owner string, cost int64, model []bool) {
	b.mu.Lock()
	b.traffic.ModelsPublished++
	improved := !b.ubSet || cost < b.ub
	if improved {
		b.ubSet = true
		b.ub = cost
		b.model = model
		b.owner = owner
		b.traffic.ModelsImproved++
	}
	fire := b.checkMeetLocked()
	if improved && b.bus.Enabled() {
		b.bus.Publish(obs.BoundImproved{Engine: owner, Lower: b.lb, Upper: b.ub, Closed: fire != nil})
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// publishLower records a proven lower bound if it improves the global
// one.
func (b *Bounds) publishLower(owner string, lb int64) {
	b.mu.Lock()
	b.traffic.LowerBoundsPublished++
	improved := lb > b.lb
	if improved {
		b.lb = lb
		b.traffic.LowerBoundsImproved++
	}
	fire := b.checkMeetLocked()
	if improved && b.bus.Enabled() {
		upper := b.ub
		if !b.ubSet {
			upper = -1
		}
		b.bus.Publish(obs.BoundImproved{Engine: owner, Lower: b.lb, Upper: upper, Closed: fire != nil})
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// checkMeetLocked detects the bounds meeting and arms the one-shot
// close callback; the caller invokes the returned function after
// releasing the lock.
func (b *Bounds) checkMeetLocked() func() {
	if b.closed || !b.ubSet || b.lb < b.ub {
		return nil
	}
	b.closed = true
	b.traffic.RaceClosedByBounds = true
	return b.onClose
}

// BestKnown returns the global incumbent cost; ok is false while no
// model has been published.
func (b *Bounds) BestKnown() (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ub, b.ubSet
}

// ProvenLower returns the best global proven lower bound (0 when none
// has been published).
func (b *Bounds) ProvenLower() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lb
}

// BestModel returns the incumbent model, its cost and the engine that
// published it; ok is false while no model has been published.
func (b *Bounds) BestModel() (owner string, cost int64, model []bool, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.owner, b.ub, b.model, b.ubSet
}

// Closed reports whether the lower bound has met the upper bound.
func (b *Bounds) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Traffic returns a snapshot of the cooperative traffic counters.
func (b *Bounds) Traffic() obs.BoundTraffic {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.traffic
}

// ForEngine returns the named engine's view of the manager: a
// maxsat.Progress whose publications are attributed to that engine.
func (b *Bounds) ForEngine(name string) maxsat.Progress {
	return engineProgress{bounds: b, name: name}
}

// engineProgress tags one engine's Progress calls with its name.
type engineProgress struct {
	bounds *Bounds
	name   string
}

var _ maxsat.Progress = engineProgress{}

func (p engineProgress) PublishModel(cost int64, model []bool) {
	p.bounds.publishModel(p.name, cost, model)
}

func (p engineProgress) PublishLower(lb int64) {
	p.bounds.publishLower(p.name, lb)
}

func (p engineProgress) BestKnown() (int64, bool) { return p.bounds.BestKnown() }

func (p engineProgress) ProvenLower() int64 { return p.bounds.ProvenLower() }
