// Package portfolio implements Step 5 of the paper's pipeline: several
// pre-configured MaxSAT solvers run in parallel on the same instance and
// the solution of the solver that finishes first is used. The paper
// motivates this with the observation that SAT-based solvers are "very
// good at some instances and not that good at others"; running a diverse
// portfolio gives stable behaviour across instance families.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/sat"
)

// Engine is a named portfolio member.
type Engine struct {
	Name   string
	Solver maxsat.Solver
}

// DefaultEngines returns the standard portfolio: the three algorithms of
// internal/maxsat plus heuristically diversified variants of the
// SAT-backed ones.
func DefaultEngines() []Engine {
	return []Engine{
		{Name: "wmsu1", Solver: &maxsat.WMSU1{}},
		{Name: "wmsu1-strat", Solver: &maxsat.WMSU1{Stratified: true}},
		{Name: "linear-su", Solver: &maxsat.LinearSU{}},
		{Name: "wmsu1-pos", Solver: &maxsat.WMSU1{SatOptions: sat.Options{InitialPhase: true}}},
		{Name: "linear-su-rnd", Solver: &maxsat.LinearSU{SatOptions: sat.Options{RandomSeed: 1, RestartBase: 50}}},
		{Name: "branch-bound", Solver: &maxsat.BranchBound{}},
	}
}

// EngineReport describes one portfolio member's run.
type EngineReport struct {
	Name      string
	Elapsed   time.Duration
	Completed bool   // finished with a definitive answer
	Err       string // non-empty when the engine failed or was cancelled
}

// Report summarises a portfolio run.
type Report struct {
	Winner  string
	Elapsed time.Duration
	Engines []EngineReport
}

// ErrNoEngines is returned when Solve is called with an empty portfolio.
var ErrNoEngines = errors.New("portfolio: no engines")

// Solve runs all engines concurrently on (copies of) the instance and
// returns the first definitive result; the remaining engines are
// cancelled and awaited before returning, so no goroutines outlive the
// call. When every engine fails, the first error is returned.
func Solve(ctx context.Context, inst *cnf.WCNF, engines []Engine) (maxsat.Result, Report, error) {
	if len(engines) == 0 {
		return maxsat.Result{}, Report{}, ErrNoEngines
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		index   int
		result  maxsat.Result
		err     error
		elapsed time.Duration
	}
	results := make(chan outcome, len(engines))
	start := time.Now()

	var wg sync.WaitGroup
	for i, engine := range engines {
		wg.Add(1)
		go func(index int, e Engine, copyInst *cnf.WCNF) {
			defer wg.Done()
			t0 := time.Now()
			res, err := solveIsolated(runCtx, e.Solver, copyInst)
			results <- outcome{index: index, result: res, err: err, elapsed: time.Since(t0)}
		}(i, engine, inst.Clone())
	}

	report := Report{Engines: make([]EngineReport, len(engines))}
	for i, e := range engines {
		report.Engines[i] = EngineReport{Name: e.Name}
	}

	var (
		winner   *outcome
		firstErr error
	)
	for received := 0; received < len(engines); received++ {
		out := <-results
		rep := &report.Engines[out.index]
		rep.Elapsed = out.elapsed
		switch {
		case out.err != nil:
			rep.Err = out.err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("portfolio: engine %s: %w", engines[out.index].Name, out.err)
			}
		default:
			rep.Completed = true
			if winner == nil {
				win := out
				winner = &win
				report.Winner = engines[out.index].Name
				report.Elapsed = time.Since(start)
				cancel() // stop the stragglers
			}
		}
	}
	wg.Wait()
	close(results)

	if winner == nil {
		return maxsat.Result{}, report, firstErr
	}
	return winner.result, report, nil
}

// solveIsolated converts a panicking engine into an error so a bug in
// one portfolio member cannot take down the race (the other engines
// keep running and the caller still gets an answer).
func solveIsolated(ctx context.Context, s maxsat.Solver, inst *cnf.WCNF) (res maxsat.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = maxsat.Result{}
			err = fmt.Errorf("portfolio: engine panicked: %v", r)
		}
	}()
	return s.Solve(ctx, inst)
}

// SolveSequential runs the engines one at a time in order and returns
// the first definitive answer. It exists for deterministic tests and
// single-threaded benchmarking of individual engines.
func SolveSequential(ctx context.Context, inst *cnf.WCNF, engines []Engine) (maxsat.Result, Report, error) {
	if len(engines) == 0 {
		return maxsat.Result{}, Report{}, ErrNoEngines
	}
	report := Report{Engines: make([]EngineReport, len(engines))}
	start := time.Now()
	var firstErr error
	for i, engine := range engines {
		report.Engines[i] = EngineReport{Name: engine.Name}
		t0 := time.Now()
		res, err := engine.Solver.Solve(ctx, inst.Clone())
		report.Engines[i].Elapsed = time.Since(t0)
		if err != nil {
			report.Engines[i].Err = err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("portfolio: engine %s: %w", engine.Name, err)
			}
			continue
		}
		report.Engines[i].Completed = true
		report.Winner = engine.Name
		report.Elapsed = time.Since(start)
		return res, report, nil
	}
	return maxsat.Result{}, report, firstErr
}
