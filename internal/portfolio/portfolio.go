// Package portfolio implements Step 5 of the paper's pipeline: several
// pre-configured MaxSAT solvers run in parallel on the same instance and
// the solution of the solver that finishes first is used. The paper
// motivates this with the observation that SAT-based solvers are "very
// good at some instances and not that good at others"; running a diverse
// portfolio gives stable behaviour across instance families.
//
// Observability: when the caller's context carries a tracing span (see
// obs.ContextWithSpan), Solve records one child span per engine with
// the engine's solver counters, and every EngineReport carries the
// engine's obs.SolverStats — including losers and cancelled members.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// Engine is a named portfolio member.
type Engine struct {
	Name   string
	Solver maxsat.Solver
}

// DefaultEngines returns the standard portfolio: the three algorithms of
// internal/maxsat plus heuristically diversified variants of the
// SAT-backed ones.
func DefaultEngines() []Engine {
	return []Engine{
		{Name: "wmsu1", Solver: &maxsat.WMSU1{}},
		{Name: "wmsu1-strat", Solver: &maxsat.WMSU1{Stratified: true}},
		{Name: "linear-su", Solver: &maxsat.LinearSU{}},
		{Name: "wmsu1-pos", Solver: &maxsat.WMSU1{SatOptions: sat.Options{InitialPhase: true}}},
		{Name: "linear-su-rnd", Solver: &maxsat.LinearSU{SatOptions: sat.Options{RandomSeed: 1, RestartBase: 50}}},
		{Name: "branch-bound", Solver: &maxsat.BranchBound{}},
	}
}

// EngineReport describes one portfolio member's run.
type EngineReport struct {
	Name      string
	Elapsed   time.Duration
	Completed bool // finished with a definitive answer
	// Cancelled marks an engine that was stopped because a sibling won
	// the race — not a real failure. Err still names the interruption.
	Cancelled bool
	Err       string // non-empty when the engine failed or was cancelled
	// Stats reports the engine's solver counters and bound trajectory,
	// populated for winners, losers and cancelled members alike.
	Stats obs.SolverStats
}

// Report summarises a portfolio run.
type Report struct {
	Winner string
	// Elapsed is the time to the first definitive answer, or the total
	// run time when every engine failed. It is always set.
	Elapsed time.Duration
	Engines []EngineReport
}

// WinnerReport returns the report of the winning engine, or nil when
// no engine completed.
func (r *Report) WinnerReport() *EngineReport {
	if r.Winner == "" {
		return nil
	}
	for i := range r.Engines {
		if r.Engines[i].Name == r.Winner && r.Engines[i].Completed {
			return &r.Engines[i]
		}
	}
	return nil
}

// ErrNoEngines is returned when Solve is called with an empty portfolio.
var ErrNoEngines = errors.New("portfolio: no engines")

// cancelledBySibling reports whether err looks like the interruption
// the race's cancel signal produces (as opposed to an engine bug).
func cancelledBySibling(err error) bool {
	return errors.Is(err, sat.ErrInterrupted) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Solve runs all engines concurrently on (copies of) the instance and
// returns the first definitive result; the remaining engines are
// cancelled and awaited before returning, so no goroutines outlive the
// call. When every engine fails, the first error is returned.
func Solve(ctx context.Context, inst *cnf.WCNF, engines []Engine) (maxsat.Result, Report, error) {
	if len(engines) == 0 {
		return maxsat.Result{}, Report{}, ErrNoEngines
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	parent := obs.SpanFromContext(ctx)

	type outcome struct {
		index   int
		result  maxsat.Result
		err     error
		elapsed time.Duration
	}
	results := make(chan outcome, len(engines))
	start := time.Now()

	var wg sync.WaitGroup
	for i, engine := range engines {
		wg.Add(1)
		span := parent.StartSpan("engine:" + engine.Name)
		go func(index int, e Engine, copyInst *cnf.WCNF, span obs.Span) {
			defer wg.Done()
			t0 := time.Now()
			res, err := solveIsolated(runCtx, e.Solver, copyInst)
			recordEngineSpan(span, res, err)
			results <- outcome{index: index, result: res, err: err, elapsed: time.Since(t0)}
		}(i, engine, inst.Clone(), span)
	}

	report := Report{Engines: make([]EngineReport, len(engines))}
	for i, e := range engines {
		report.Engines[i] = EngineReport{Name: e.Name}
	}

	var (
		winner   *outcome
		firstErr error
	)
	for received := 0; received < len(engines); received++ {
		out := <-results
		rep := &report.Engines[out.index]
		rep.Elapsed = out.elapsed
		rep.Stats = out.result.Stats
		switch {
		case out.err != nil:
			rep.Err = out.err.Error()
			// Interruptions that arrive after a sibling already won are
			// the race's own cancel signal, not engine failures.
			if winner != nil && cancelledBySibling(out.err) {
				rep.Cancelled = true
				rep.Err = "cancelled: sibling engine won: " + rep.Err
			} else if firstErr == nil {
				firstErr = fmt.Errorf("portfolio: engine %s: %w", engines[out.index].Name, out.err)
			}
		default:
			rep.Completed = true
			if winner == nil {
				win := out
				winner = &win
				report.Winner = engines[out.index].Name
				report.Elapsed = time.Since(start)
				cancel() // stop the stragglers
			}
		}
	}
	wg.Wait()
	close(results)

	if winner == nil {
		report.Elapsed = time.Since(start)
		return maxsat.Result{}, report, firstErr
	}
	return winner.result, report, nil
}

// recordEngineSpan attaches an engine's counters to its trace span.
func recordEngineSpan(span obs.Span, res maxsat.Result, err error) {
	if span.Recording() {
		span.SetString("status", res.Status.String())
		span.SetInt("satCalls", res.Stats.SATCalls)
		span.SetInt("conflicts", res.Stats.Conflicts)
		span.SetInt("decisions", res.Stats.Decisions)
		span.SetInt("propagations", res.Stats.Propagations)
		span.SetInt("restarts", res.Stats.Restarts)
		span.SetInt("learntClauses", res.Stats.LearntClauses)
		if len(res.Stats.Bounds) > 0 {
			span.SetValue("bounds", res.Stats.Bounds)
		}
		if err != nil {
			span.SetString("err", err.Error())
		} else if res.Status == maxsat.Optimal {
			span.SetInt("cost", res.Cost)
		}
	}
	span.End()
}

// solveIsolated converts a panicking engine into an error so a bug in
// one portfolio member cannot take down the race (the other engines
// keep running and the caller still gets an answer).
func solveIsolated(ctx context.Context, s maxsat.Solver, inst *cnf.WCNF) (res maxsat.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = maxsat.Result{}
			err = fmt.Errorf("portfolio: engine panicked: %v", r)
		}
	}()
	return s.Solve(ctx, inst)
}

// SolveSequential runs the engines one at a time in order and returns
// the first definitive answer. It exists for deterministic tests and
// single-threaded benchmarking of individual engines.
func SolveSequential(ctx context.Context, inst *cnf.WCNF, engines []Engine) (maxsat.Result, Report, error) {
	if len(engines) == 0 {
		return maxsat.Result{}, Report{}, ErrNoEngines
	}
	parent := obs.SpanFromContext(ctx)
	report := Report{Engines: make([]EngineReport, len(engines))}
	start := time.Now()
	var firstErr error
	for i, engine := range engines {
		report.Engines[i] = EngineReport{Name: engine.Name}
		span := parent.StartSpan("engine:" + engine.Name)
		t0 := time.Now()
		res, err := engine.Solver.Solve(ctx, inst.Clone())
		recordEngineSpan(span, res, err)
		report.Engines[i].Elapsed = time.Since(t0)
		report.Engines[i].Stats = res.Stats
		if err != nil {
			report.Engines[i].Err = err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("portfolio: engine %s: %w", engine.Name, err)
			}
			continue
		}
		report.Engines[i].Completed = true
		report.Winner = engine.Name
		report.Elapsed = time.Since(start)
		return res, report, nil
	}
	report.Elapsed = time.Since(start)
	return maxsat.Result{}, report, firstErr
}
