// Package portfolio implements Step 5 of the paper's pipeline: several
// pre-configured MaxSAT solvers run in parallel on the same instance and
// the solution of the solver that finishes first is used. The paper
// motivates this with the observation that SAT-based solvers are "very
// good at some instances and not that good at others"; running a diverse
// portfolio gives stable behaviour across instance families.
//
// The race is cooperative: a shared bound manager (Bounds) relays every
// engine's improving models and proven lower bounds to its siblings, so
// LinearSU tightens its budget from the global incumbent, BranchBound
// prunes against it, and WMSU1's core payments raise a global lower
// bound. When the global lower bound meets the global upper bound the
// race stops early with a cooperatively-proven Optimal. When a deadline
// expires first, Solve synthesizes the best anytime answer (Status
// Feasible, with an optimality gap) instead of failing.
//
// Observability: when the caller's context carries a tracing span (see
// obs.ContextWithSpan), Solve records one child span per engine with
// the engine's solver counters, and every EngineReport carries the
// engine's obs.SolverStats — including losers and cancelled members.
// Report.Coop summarises the cross-engine bound traffic.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// Engine is a named portfolio member.
type Engine struct {
	Name   string
	Solver maxsat.Solver
}

// DefaultEngines returns the standard portfolio: the three algorithms of
// internal/maxsat plus heuristically diversified variants of the
// SAT-backed ones.
func DefaultEngines() []Engine {
	return []Engine{
		{Name: "wmsu1", Solver: &maxsat.WMSU1{}},
		{Name: "wmsu1-strat", Solver: &maxsat.WMSU1{Stratified: true}},
		{Name: "linear-su", Solver: &maxsat.LinearSU{}},
		{Name: "wmsu1-pos", Solver: &maxsat.WMSU1{SatOptions: sat.Options{InitialPhase: true}}},
		{Name: "linear-su-rnd", Solver: &maxsat.LinearSU{SatOptions: sat.Options{RandomSeed: 1, RestartBase: 50}}},
		{Name: "branch-bound", Solver: &maxsat.BranchBound{}},
	}
}

// EngineReport describes one portfolio member's run.
type EngineReport struct {
	Name      string
	Elapsed   time.Duration
	Completed bool // finished with a definitive answer
	// Cancelled marks an engine that was stopped by the race — a
	// sibling won, the shared bounds met, or the parent context expired
	// — not a real failure. Err names the cause.
	Cancelled bool
	Err       string // non-empty when the engine failed or was cancelled
	// Status is the engine's own answer (Feasible for an anytime
	// incumbent returned on cancellation, Unknown when it had nothing).
	Status maxsat.Status
	// Cost is the engine's model cost (valid when Status is Optimal or
	// Feasible); LowerBound its proven lower bound on the optimum.
	Cost       int64
	LowerBound int64
	// Stats reports the engine's solver counters and bound trajectory,
	// populated for winners, losers and cancelled members alike.
	Stats obs.SolverStats
}

// Report summarises a portfolio run.
type Report struct {
	// Winner names the engine whose model the returned Result carries:
	// the first definitively-finished engine, or — for anytime and
	// cooperatively-proven answers — the engine holding the best
	// incumbent. Empty when the run produced no model.
	Winner string
	// Elapsed is the time to the first definitive answer, or the total
	// run time when every engine failed. It is always set.
	Elapsed time.Duration
	Engines []EngineReport
	// Coop summarises the cooperative bound traffic between engines.
	Coop obs.BoundTraffic
}

// WinnerReport returns the report of the engine named by Winner, or nil
// when no engine produced the result.
func (r *Report) WinnerReport() *EngineReport {
	if r.Winner == "" {
		return nil
	}
	for i := range r.Engines {
		if r.Engines[i].Name == r.Winner {
			return &r.Engines[i]
		}
	}
	return nil
}

// ErrNoEngines is returned when Solve is called with an empty portfolio.
var ErrNoEngines = errors.New("portfolio: no engines")

// ErrNoAnswer is returned (wrapped) when the race ends without any
// answer at all — no optimum, no infeasibility proof, no anytime
// incumbent. Callers use it to tell "the budget ran out before anything
// was learned" apart from a genuine engine failure; the context's own
// error, when the race was cancelled, is wrapped alongside.
var ErrNoAnswer = errors.New("portfolio: no answer")

// cancelledBySibling reports whether err looks like the interruption
// the race's cancel signal produces (as opposed to an engine bug).
func cancelledBySibling(err error) bool {
	return errors.Is(err, sat.ErrInterrupted) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Solve runs all engines concurrently on (copies of) the instance,
// cooperating through a shared bound manager, and returns the first
// definitive result; the remaining engines are cancelled and awaited
// before returning, so no goroutines outlive the call.
//
// When no engine finishes definitively — deadline, cancellation, or the
// shared bounds meeting first — Solve synthesizes the best anytime
// answer: the cheapest incumbent any engine returned, upgraded to
// Optimal when the global lower bound proves it, otherwise Feasible
// with the bound gap. Only when there is nothing to report does it
// return an error: the parent context's error when the run was cut
// short, or the first engine failure otherwise.
func Solve(ctx context.Context, inst *cnf.WCNF, engines []Engine) (maxsat.Result, Report, error) {
	if len(engines) == 0 {
		return maxsat.Result{}, Report{}, ErrNoEngines
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	bounds := NewBounds(cancel)

	parent := obs.SpanFromContext(ctx)
	bus := obs.BusFromContext(ctx)
	bounds.SetEventBus(bus)
	telemetryOn := bus.Enabled() || obs.MetricsFromContext(ctx) != nil

	type outcome struct {
		result  maxsat.Result
		err     error
		elapsed time.Duration
	}
	type indexed struct {
		index int
		outcome
	}
	results := make(chan indexed, len(engines))
	start := time.Now()

	var wg sync.WaitGroup
	for i, engine := range engines {
		wg.Add(1)
		span := parent.StartSpan("engine:" + engine.Name)
		go func(index int, e Engine, copyInst *cnf.WCNF, span obs.Span) {
			defer wg.Done()
			engineCtx := runCtx
			if telemetryOn {
				engineCtx = obs.ContextWithEngineName(runCtx, e.Name)
			}
			if bus.Enabled() {
				bus.Publish(obs.EngineStarted{Engine: e.Name})
			}
			t0 := time.Now()
			res, err := solveIsolated(engineCtx, e.Solver, copyInst, bounds.ForEngine(e.Name))
			if bus.Enabled() {
				finished := obs.EngineFinished{
					Engine:     e.Name,
					Status:     res.Status.String(),
					Cost:       res.Cost,
					LowerBound: res.LowerBound,
				}
				if err != nil {
					finished.Err = err.Error()
				}
				bus.Publish(finished)
			}
			recordEngineSpan(span, res, err)
			results <- indexed{index: index, outcome: outcome{result: res, err: err, elapsed: time.Since(t0)}}
		}(i, engine, inst.Clone(), span)
	}

	report := Report{Engines: make([]EngineReport, len(engines))}
	for i, e := range engines {
		report.Engines[i] = EngineReport{Name: e.Name}
	}

	outcomes := make([]*outcome, len(engines))
	winner := -1
	for received := 0; received < len(engines); received++ {
		ind := <-results
		out := ind.outcome
		outcomes[ind.index] = &out
		if out.err == nil && out.result.Status.Definitive() && winner < 0 {
			winner = ind.index
			report.Winner = engines[ind.index].Name
			report.Elapsed = time.Since(start)
			cancel() // stop the stragglers
		}
	}
	wg.Wait()
	close(results)
	report.Coop = bounds.Traffic()
	if report.Elapsed == 0 {
		report.Elapsed = time.Since(start)
	}

	// Classify every member now that the race's end cause is known.
	boundsClosed := bounds.Closed()
	parentDead := ctx.Err() != nil
	var firstErr error
	for i, out := range outcomes {
		rep := &report.Engines[i]
		rep.Elapsed = out.elapsed
		// Retag under the portfolio's registered name: standalone engines
		// only know their algorithm name, and diversified variants
		// ("linear-su-rnd") would otherwise collide in aggregated
		// trajectories. Tag the outcome first so the report and a
		// returned winner result carry identical stats.
		out.result.Stats.TagEngine(engines[i].Name)
		rep.Stats = out.result.Stats
		rep.Status = out.result.Status
		rep.Cost = out.result.Cost
		rep.LowerBound = out.result.LowerBound
		if out.err == nil {
			if out.result.Status.Definitive() {
				rep.Completed = true
				continue
			}
			// A partial answer (Feasible incumbent or Unknown): the
			// engine was stopped by the race, not broken.
			if winner >= 0 || boundsClosed || parentDead {
				rep.Cancelled = true
				rep.Err = cancelCause(winner >= 0, boundsClosed, parentDead)
			}
			continue
		}
		rep.Err = out.err.Error()
		if cancelledBySibling(out.err) && (winner >= 0 || boundsClosed || parentDead) {
			rep.Cancelled = true
			rep.Err = cancelCause(winner >= 0, boundsClosed, parentDead) + ": " + rep.Err
		} else if firstErr == nil {
			firstErr = fmt.Errorf("portfolio: engine %s: %w", engines[i].Name, out.err)
		}
	}

	if winner >= 0 {
		return outcomes[winner].result, report, nil
	}

	// No definitive answer: synthesize the best anytime one. Engines
	// returning Feasible have verified their incumbents; the global
	// proven lower bound (core payments, completed-but-pruned searches)
	// tightens the gap, possibly all the way to a cooperative Optimal.
	best := -1
	for i, out := range outcomes {
		if out.err != nil || out.result.Status != maxsat.Feasible {
			continue
		}
		if best < 0 || out.result.Cost < outcomes[best].result.Cost {
			best = i
		}
	}
	glb := bounds.ProvenLower()
	if best >= 0 {
		res := outcomes[best].result
		if glb > res.LowerBound {
			res.LowerBound = glb
		}
		if res.LowerBound >= res.Cost {
			// The global lower bound pins the incumbent: optimal, proven
			// jointly by the portfolio.
			res.LowerBound = res.Cost
			res.Status = maxsat.Optimal
		}
		report.Winner = engines[best].Name
		return res, report, nil
	}

	if firstErr != nil {
		return maxsat.Result{LowerBound: glb}, report, firstErr
	}
	if err := ctx.Err(); err != nil {
		return maxsat.Result{LowerBound: glb}, report, fmt.Errorf("%w before cancellation (%w)", ErrNoAnswer, err)
	}
	// Engines finished without error, model or proof (possible only in
	// degenerate cooperative schedules).
	return maxsat.Result{LowerBound: glb}, report, fmt.Errorf("%w: no engine produced one", ErrNoAnswer)
}

// cancelCause names why the race stopped an engine, in precedence
// order: a sibling's definitive win, the shared bounds meeting, the
// parent context expiring.
func cancelCause(siblingWon, boundsClosed, parentDead bool) string {
	switch {
	case siblingWon:
		return "cancelled: sibling engine won"
	case boundsClosed:
		return "cancelled: race closed by shared bounds"
	case parentDead:
		return "cancelled: parent context expired"
	default:
		return "cancelled"
	}
}

// recordEngineSpan attaches an engine's counters to its trace span.
func recordEngineSpan(span obs.Span, res maxsat.Result, err error) {
	if span.Recording() {
		span.SetString("status", res.Status.String())
		span.SetInt("satCalls", res.Stats.SATCalls)
		span.SetInt("conflicts", res.Stats.Conflicts)
		span.SetInt("decisions", res.Stats.Decisions)
		span.SetInt("propagations", res.Stats.Propagations)
		span.SetInt("restarts", res.Stats.Restarts)
		span.SetInt("learntClauses", res.Stats.LearntClauses)
		if len(res.Stats.Bounds) > 0 {
			span.SetValue("bounds", res.Stats.Bounds)
		}
		if err != nil {
			span.SetString("err", err.Error())
		} else if res.Status == maxsat.Optimal || res.Status == maxsat.Feasible {
			span.SetInt("cost", res.Cost)
			span.SetInt("lowerBound", res.LowerBound)
		}
	}
	span.End()
}

// solveIsolated converts a panicking engine into an error so a bug in
// one portfolio member cannot take down the race (the other engines
// keep running and the caller still gets an answer). Engines
// implementing maxsat.ProgressSolver receive the cooperative bound
// channel; the rest run standalone.
func solveIsolated(ctx context.Context, s maxsat.Solver, inst *cnf.WCNF, prog maxsat.Progress) (res maxsat.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = maxsat.Result{}
			err = fmt.Errorf("portfolio: engine panicked: %v", r)
		}
	}()
	if ps, ok := s.(maxsat.ProgressSolver); ok && prog != nil {
		return ps.SolveWithProgress(ctx, inst, prog)
	}
	return s.Solve(ctx, inst)
}

// SolveSequential runs the engines one at a time in order and returns
// the first definitive answer. It exists for deterministic tests and
// single-threaded benchmarking of individual engines. Like Solve it
// falls back to the best anytime incumbent when no engine finishes
// definitively (e.g. under a deadline).
func SolveSequential(ctx context.Context, inst *cnf.WCNF, engines []Engine) (maxsat.Result, Report, error) {
	if len(engines) == 0 {
		return maxsat.Result{}, Report{}, ErrNoEngines
	}
	parent := obs.SpanFromContext(ctx)
	report := Report{Engines: make([]EngineReport, len(engines))}
	start := time.Now()
	var firstErr error
	best := maxsat.Result{Status: maxsat.Unknown}
	bestEngine := ""
	for i, engine := range engines {
		report.Engines[i] = EngineReport{Name: engine.Name}
		span := parent.StartSpan("engine:" + engine.Name)
		t0 := time.Now()
		res, err := engine.Solver.Solve(ctx, inst.Clone())
		recordEngineSpan(span, res, err)
		rep := &report.Engines[i]
		rep.Elapsed = time.Since(t0)
		res.Stats.TagEngine(engine.Name)
		rep.Stats = res.Stats
		rep.Status = res.Status
		rep.Cost = res.Cost
		rep.LowerBound = res.LowerBound
		if res.LowerBound > best.LowerBound {
			best.LowerBound = res.LowerBound
		}
		if err != nil {
			rep.Err = err.Error()
			if cancelledBySibling(err) && ctx.Err() != nil {
				rep.Cancelled = true
				rep.Err = "cancelled: parent context expired: " + rep.Err
			} else if firstErr == nil {
				firstErr = fmt.Errorf("portfolio: engine %s: %w", engine.Name, err)
			}
			continue
		}
		if res.Status.Definitive() {
			rep.Completed = true
			report.Winner = engine.Name
			report.Elapsed = time.Since(start)
			return res, report, nil
		}
		rep.Cancelled = ctx.Err() != nil
		if rep.Cancelled {
			rep.Err = "cancelled: parent context expired"
		}
		if res.Status == maxsat.Feasible && (best.Status != maxsat.Feasible || res.Cost < best.Cost) {
			lb := best.LowerBound
			best = res
			if lb > best.LowerBound {
				best.LowerBound = lb
			}
			bestEngine = engine.Name
		}
	}
	report.Elapsed = time.Since(start)
	if best.Status == maxsat.Feasible {
		if best.LowerBound >= best.Cost {
			best.LowerBound = best.Cost
			best.Status = maxsat.Optimal
		}
		report.Winner = bestEngine
		return best, report, nil
	}
	if firstErr != nil {
		return maxsat.Result{LowerBound: best.LowerBound}, report, firstErr
	}
	if err := ctx.Err(); err != nil {
		return maxsat.Result{LowerBound: best.LowerBound}, report, fmt.Errorf("%w before cancellation (%w)", ErrNoAnswer, err)
	}
	return maxsat.Result{LowerBound: best.LowerBound}, report, fmt.Errorf("%w: no engine produced one", ErrNoAnswer)
}
