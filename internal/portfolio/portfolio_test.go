package portfolio

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/maxsat"
)

func smallInstance() *cnf.WCNF {
	var inst cnf.WCNF
	inst.AddHard(1, 3)
	inst.AddHard(2, 3)
	inst.AddSoft(2, -1)
	inst.AddSoft(3, -2)
	inst.AddSoft(10, -3)
	return &inst
}

func TestSolveSmall(t *testing.T) {
	res, report, err := Solve(context.Background(), smallInstance(), DefaultEngines())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != maxsat.Optimal || res.Cost != 5 {
		t.Errorf("got %v cost %d, want OPTIMAL 5", res.Status, res.Cost)
	}
	if report.Winner == "" {
		t.Error("no winner recorded")
	}
	if len(report.Engines) != len(DefaultEngines()) {
		t.Errorf("report has %d engines", len(report.Engines))
	}
}

func TestSolveNoEngines(t *testing.T) {
	if _, _, err := Solve(context.Background(), smallInstance(), nil); !errors.Is(err, ErrNoEngines) {
		t.Errorf("got %v", err)
	}
	if _, _, err := SolveSequential(context.Background(), smallInstance(), nil); !errors.Is(err, ErrNoEngines) {
		t.Errorf("sequential: got %v", err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	var inst cnf.WCNF
	inst.AddHard(1)
	inst.AddHard(-1)
	res, _, err := Solve(context.Background(), &inst, DefaultEngines())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != maxsat.Infeasible {
		t.Errorf("got %v, want INFEASIBLE", res.Status)
	}
}

func TestSolveSequentialOrder(t *testing.T) {
	engines := DefaultEngines()
	res, report, err := SolveSequential(context.Background(), smallInstance(), engines)
	if err != nil {
		t.Fatal(err)
	}
	if report.Winner != engines[0].Name {
		t.Errorf("sequential winner = %s, want first engine %s", report.Winner, engines[0].Name)
	}
	if res.Cost != 5 {
		t.Errorf("cost = %d", res.Cost)
	}
}

// slowSolver blocks until its context is cancelled.
type slowSolver struct{}

func (slowSolver) Name() string { return "slow" }

func (slowSolver) Solve(ctx context.Context, _ *cnf.WCNF) (maxsat.Result, error) {
	<-ctx.Done()
	return maxsat.Result{}, ctx.Err()
}

// panicSolver panics immediately, simulating an engine bug.
type panicSolver struct{}

func (panicSolver) Name() string { return "panic" }

func (panicSolver) Solve(context.Context, *cnf.WCNF) (maxsat.Result, error) {
	panic("engine bug")
}

// failSolver errors immediately.
type failSolver struct{}

func (failSolver) Name() string { return "fail" }

func (failSolver) Solve(context.Context, *cnf.WCNF) (maxsat.Result, error) {
	return maxsat.Result{}, errors.New("boom")
}

func TestSolveFirstFinisherWins(t *testing.T) {
	engines := []Engine{
		{Name: "slow", Solver: slowSolver{}},
		{Name: "fast", Solver: &maxsat.BranchBound{}},
	}
	start := time.Now()
	res, report, err := Solve(context.Background(), smallInstance(), engines)
	if err != nil {
		t.Fatal(err)
	}
	if report.Winner != "fast" {
		t.Errorf("winner = %s", report.Winner)
	}
	if res.Cost != 5 {
		t.Errorf("cost = %d", res.Cost)
	}
	// The slow solver must have been cancelled promptly, not waited out.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("portfolio took %v; cancellation failed", elapsed)
	}
	for _, rep := range report.Engines {
		if rep.Name != "slow" {
			continue
		}
		if rep.Err == "" {
			t.Error("slow engine should report a cancellation error")
		}
		if !rep.Cancelled {
			t.Errorf("slow engine reported as failed, not cancelled: %+v", rep)
		}
		if !strings.Contains(rep.Err, "cancelled") {
			t.Errorf("Err should distinguish cancellation: %q", rep.Err)
		}
	}
}

// slowRealSolver wraps a real engine but stalls before solving, so it
// reliably loses the race yet returns the engine's genuine
// interruption error (not a bare context error). It exercises the
// cancelled-not-failed classification with realistic error chains.
type slowRealSolver struct{ inner maxsat.Solver }

func (s slowRealSolver) Name() string { return "slow-real" }

func (s slowRealSolver) Solve(ctx context.Context, inst *cnf.WCNF) (maxsat.Result, error) {
	select {
	case <-ctx.Done():
		return s.inner.Solve(ctx, inst) // engine sees the cancelled context
	case <-time.After(30 * time.Second):
		return s.inner.Solve(ctx, inst)
	}
}

func TestSolveCancelledEngineNotFailed(t *testing.T) {
	engines := []Engine{
		{Name: "slow-real", Solver: slowRealSolver{inner: &maxsat.LinearSU{}}},
		{Name: "fast", Solver: &maxsat.BranchBound{}},
	}
	res, report, err := Solve(context.Background(), smallInstance(), engines)
	if err != nil {
		t.Fatal(err)
	}
	if report.Winner != "fast" || res.Cost != 5 {
		t.Fatalf("winner %s cost %d", report.Winner, res.Cost)
	}
	if report.Elapsed <= 0 {
		t.Error("Report.Elapsed not set")
	}
	for _, rep := range report.Engines {
		switch rep.Name {
		case "slow-real":
			if !rep.Cancelled {
				t.Errorf("loser should be cancelled, got %+v", rep)
			}
			if rep.Completed {
				t.Error("cancelled engine cannot be completed")
			}
		case "fast":
			if !rep.Completed || rep.Cancelled {
				t.Errorf("winner report %+v", rep)
			}
			if rep.Stats.Decisions == 0 {
				t.Error("winner's solver stats missing from its report")
			}
		}
	}
}

func TestSolveAllFailElapsedSet(t *testing.T) {
	engines := []Engine{{Name: "fail", Solver: failSolver{}}}
	_, report, err := Solve(context.Background(), smallInstance(), engines)
	if err == nil {
		t.Fatal("expected error")
	}
	if report.Elapsed <= 0 {
		t.Error("Report.Elapsed must be set even when every engine fails")
	}
	_, report, err = SolveSequential(context.Background(), smallInstance(), engines)
	if err == nil {
		t.Fatal("expected sequential error")
	}
	if report.Elapsed <= 0 {
		t.Error("sequential Report.Elapsed must be set on total failure")
	}
	if report.WinnerReport() != nil {
		t.Error("WinnerReport on total failure should be nil")
	}
}

// TestSolveRealFailureNotCancelled: an engine that errors on its own
// must stay a failure even though a sibling later wins.
func TestSolveRealFailureNotCancelled(t *testing.T) {
	engines := []Engine{
		{Name: "fail", Solver: failSolver{}},
		{Name: "good", Solver: &maxsat.BranchBound{}},
	}
	_, report, err := Solve(context.Background(), smallInstance(), engines)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range report.Engines {
		if rep.Name == "fail" && rep.Cancelled {
			t.Errorf("genuine failure misclassified as cancellation: %+v", rep)
		}
	}
}

func TestSolveStatsForAllMembers(t *testing.T) {
	res, report, err := Solve(context.Background(), smallInstance(), DefaultEngines())
	if err != nil {
		t.Fatal(err)
	}
	win := report.WinnerReport()
	if win == nil {
		t.Fatal("no winner report")
	}
	if !reflect.DeepEqual(win.Stats, res.Stats) {
		t.Error("winner's EngineReport.Stats disagrees with the result's stats")
	}
	completed := 0
	for _, rep := range report.Engines {
		if rep.Completed {
			completed++
			if rep.Stats.SATCalls == 0 && rep.Stats.Decisions == 0 {
				t.Errorf("completed engine %s reported no work", rep.Name)
			}
		}
	}
	if completed == 0 {
		t.Error("no engine completed")
	}
}

func TestSolveSurvivesPanickingEngine(t *testing.T) {
	engines := []Engine{
		{Name: "panic", Solver: panicSolver{}},
		{Name: "good", Solver: &maxsat.BranchBound{}},
	}
	res, report, err := Solve(context.Background(), smallInstance(), engines)
	if err != nil {
		t.Fatalf("portfolio should survive an engine panic: %v", err)
	}
	if res.Cost != 5 || report.Winner != "good" {
		t.Errorf("cost %d winner %s", res.Cost, report.Winner)
	}
	for _, rep := range report.Engines {
		if rep.Name == "panic" && !strings.Contains(rep.Err, "panicked") {
			t.Errorf("panic engine report: %+v", rep)
		}
	}
}

func TestSolveAllFail(t *testing.T) {
	engines := []Engine{
		{Name: "fail", Solver: failSolver{}},
		{Name: "fail2", Solver: failSolver{}},
	}
	_, report, err := Solve(context.Background(), smallInstance(), engines)
	if err == nil {
		t.Fatal("expected error when all engines fail")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("error %v should mention the cause", err)
	}
	if report.Winner != "" {
		t.Errorf("winner = %q on total failure", report.Winner)
	}
}

func TestSolveParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	engines := []Engine{{Name: "slow", Solver: slowSolver{}}}
	if _, _, err := Solve(ctx, smallInstance(), engines); err == nil {
		t.Error("expected error from cancelled parent context")
	}
}

func TestSolveAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		var inst cnf.WCNF
		numVars := 5 + rng.Intn(5)
		inst.NumVars = numVars
		for i := 0; i < numVars; i++ {
			a := cnf.Lit(rng.Intn(numVars) + 1)
			b := cnf.Lit(rng.Intn(numVars) + 1)
			if rng.Intn(2) == 0 {
				a = -a
			}
			if rng.Intn(2) == 0 {
				b = -b
			}
			inst.AddHard(a, b)
		}
		for v := 1; v <= numVars; v++ {
			inst.AddSoft(int64(1+rng.Intn(30)), -cnf.Lit(v))
		}

		parallel, _, err1 := Solve(context.Background(), &inst, DefaultEngines())
		sequential, _, err2 := SolveSequential(context.Background(), &inst, DefaultEngines())
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errors %v, %v", trial, err1, err2)
		}
		if parallel.Status != sequential.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, parallel.Status, sequential.Status)
		}
		if parallel.Status == maxsat.Optimal && parallel.Cost != sequential.Cost {
			t.Fatalf("trial %d: cost %d vs %d", trial, parallel.Cost, sequential.Cost)
		}
	}
}

func TestDefaultEnginesDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range DefaultEngines() {
		if seen[e.Name] {
			t.Errorf("duplicate engine name %s", e.Name)
		}
		seen[e.Name] = true
		if e.Solver == nil {
			t.Errorf("engine %s has nil solver", e.Name)
		}
	}
}
