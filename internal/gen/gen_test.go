package gen

import (
	"testing"

	"mpmcs4fta/internal/ft"
)

func TestFPSStructure(t *testing.T) {
	tree := FPS()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.NumEvents() != 7 || tree.NumGates() != 5 {
		t.Errorf("FPS has %d events, %d gates", tree.NumEvents(), tree.NumGates())
	}
	if tree.Event("x1").Prob != 0.2 || tree.Event("x7").Prob != 0.05 {
		t.Error("FPS probabilities do not match Table I")
	}
	// The defining behaviour from the paper: both sensors failing
	// triggers the top event.
	got, err := tree.Eval(map[string]bool{"x1": true, "x2": true})
	if err != nil || !got {
		t.Errorf("Eval({x1,x2}) = %v, %v", got, err)
	}
}

func TestPressureTankStructure(t *testing.T) {
	tree := PressureTank()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// k2 alone overruns the pump.
	got, err := tree.Eval(map[string]bool{"k2": true})
	if err != nil || !got {
		t.Errorf("Eval({k2}) = %v, %v", got, err)
	}
	// s1 alone is insufficient.
	got, err = tree.Eval(map[string]bool{"s1": true})
	if err != nil || got {
		t.Errorf("Eval({s1}) = %v, %v", got, err)
	}
	// s1 + one from each emergency path.
	got, err = tree.Eval(map[string]bool{"s1": true, "op": true, "tm": true})
	if err != nil || !got {
		t.Errorf("Eval({s1,op,tm}) = %v, %v", got, err)
	}
}

func TestRedundantSCADAVoting(t *testing.T) {
	tree := RedundantSCADA()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := tree.Eval(map[string]bool{"c1": true, "c3": true})
	if err != nil || !got {
		t.Errorf("two of three channels should trip: %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"c2": true})
	if err != nil || got {
		t.Errorf("one channel should not trip: %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"n1": true})
	if err != nil || got {
		t.Errorf("primary switch alone should not trip: %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"n1": true, "n2": true})
	if err != nil || !got {
		t.Errorf("both switches should trip: %v, %v", got, err)
	}
}

func TestReactorProtectionStructure(t *testing.T) {
	tree := ReactorProtection()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overpressure needs BOTH the shutdown chain and the relief path
	// down: relief alone is insufficient.
	got, err := tree.Eval(map[string]bool{"rv": true, "rd": true})
	if err != nil || got {
		t.Errorf("relief failure alone should not overpressure: %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"rv": true, "rd": true, "ls": true})
	if err != nil || !got {
		t.Errorf("relief + logic solver should overpressure: %v, %v", got, err)
	}
	// 2-of-3 transmitters plus relief.
	got, err = tree.Eval(map[string]bool{"pt1": true, "pt3": true, "rv": true, "rd": true})
	if err != nil || !got {
		t.Errorf("sensor majority + relief should overpressure: %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"pt1": true, "rv": true, "rd": true})
	if err != nil || got {
		t.Errorf("single transmitter should not defeat the vote: %v, %v", got, err)
	}
}

func TestRailwayCrossingStructure(t *testing.T) {
	tree := RailwayCrossing()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Any protection failure still needs the driver error.
	got, err := tree.Eval(map[string]bool{"ctl": true})
	if err != nil || got {
		t.Errorf("controller fault alone should not collide: %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"ctl": true, "dv": true})
	if err != nil || !got {
		t.Errorf("controller fault + driver error should collide: %v, %v", got, err)
	}
	// Warning path needs both channels silent.
	got, err = tree.Eval(map[string]bool{"wl": true, "dv": true})
	if err != nil || got {
		t.Errorf("lights alone should not count as silent warnings: %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"wl": true, "wb": true, "dv": true})
	if err != nil || !got {
		t.Errorf("both warnings + driver should collide: %v, %v", got, err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	cfg := Config{Events: 30, Seed: 7}
	a, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEvents() != b.NumEvents() || a.NumGates() != b.NumGates() {
		t.Error("same seed produced different shapes")
	}
	for _, e := range a.Events() {
		if other := b.Event(e.ID); other == nil || other.Prob != e.Prob {
			t.Fatalf("event %s differs between runs", e.ID)
		}
	}
}

func TestRandomValidAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tree, err := Random(Config{Events: 25, Seed: seed, VotingFrac: 0.3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tree.NumEvents() != 25 {
			t.Fatalf("seed %d: %d events", seed, tree.NumEvents())
		}
		for _, e := range tree.Events() {
			if e.Prob <= 0 || e.Prob > 0.2000001 {
				t.Fatalf("seed %d: event %s probability %v out of range", seed, e.ID, e.Prob)
			}
		}
	}
}

func TestRandomScalesToThousands(t *testing.T) {
	tree, err := Random(Config{Events: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := tree.Stats()
	if stats.Events+stats.Gates < 3000 {
		t.Errorf("tree too small: %+v", stats)
	}
}

func TestRandomErrors(t *testing.T) {
	if _, err := Random(Config{Events: 1}); err == nil {
		t.Error("single-event config accepted")
	}
	if _, err := Random(Config{Events: 5, MinProb: 0.5, MaxProb: 0.1}); err == nil {
		t.Error("inverted probability range accepted")
	}
	if _, err := Random(Config{Events: 5, MinProb: -1, MaxProb: 0.5}); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestRandomVotingGatesAppear(t *testing.T) {
	tree, err := Random(Config{Events: 200, Seed: 3, VotingFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var voting int
	for _, g := range tree.Gates() {
		if g.Type == ft.GateVoting {
			voting++
		}
	}
	if voting == 0 {
		t.Error("VotingFrac 0.5 produced no voting gates")
	}
}

// TestModularKnownModuleCount: every generated subtree root must be a
// Dutuit–Rauzy module of the combined tree — the ground truth the
// decomposition planner and benchmarks rely on.
func TestModularKnownModuleCount(t *testing.T) {
	for _, m := range []int{2, 4, 6} {
		tree, err := Modular(ModularConfig{
			Modules:         m,
			EventsPerModule: 12,
			Seed:            int64(m),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatal(err)
		}
		if got, want := tree.NumEvents(), m*12; got != want {
			t.Fatalf("modules=%d: %d events, want %d", m, got, want)
		}
		modules, err := tree.Modules()
		if err != nil {
			t.Fatal(err)
		}
		isModule := make(map[string]bool, len(modules))
		for _, id := range modules {
			isModule[id] = true
		}
		top := tree.Gate(tree.Top())
		if top == nil || len(top.Inputs) != m {
			t.Fatalf("modules=%d: top gate has %v inputs", m, top)
		}
		for _, root := range top.Inputs {
			if !isModule[root] {
				t.Fatalf("modules=%d: subtree root %s is not a module (modules: %v)", m, root, modules)
			}
		}
	}
}

// TestModularDeterministic: same config, same tree.
func TestModularDeterministic(t *testing.T) {
	cfg := ModularConfig{Modules: 3, EventsPerModule: 10, Seed: 42}
	a, err := Modular(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Modular(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("same seed produced different modular trees")
	}
}

// TestModularRejectsDegenerateConfigs.
func TestModularRejectsDegenerateConfigs(t *testing.T) {
	if _, err := Modular(ModularConfig{Modules: 1, EventsPerModule: 5}); err == nil {
		t.Fatal("Modules=1 accepted")
	}
	if _, err := Modular(ModularConfig{Modules: 3, EventsPerModule: 1}); err == nil {
		t.Fatal("EventsPerModule=1 accepted")
	}
}
