package gen

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpmcs4fta/internal/ft"
)

// genConfig is a quick.Generator for valid generator configurations.
type genConfig struct {
	Cfg Config
}

// Generate implements quick.Generator.
func (genConfig) Generate(r *rand.Rand, _ int) reflect.Value {
	cfg := Config{
		Events:     2 + r.Intn(60),
		MaxFanIn:   2 + r.Intn(5),
		AndBias:    0.1 + 0.8*r.Float64(),
		VotingFrac: r.Float64() * 0.5,
		MinProb:    1e-5,
		MaxProb:    0.5,
		NoSharing:  r.Intn(2) == 0,
		Seed:       r.Int63(),
	}
	return reflect.ValueOf(genConfig{Cfg: cfg})
}

func genQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(173))}
}

// TestQuickGeneratedTreesAreValid: every configuration yields a valid
// tree with the requested event count and probabilities in range.
func TestQuickGeneratedTreesAreValid(t *testing.T) {
	property := func(g genConfig) bool {
		tree, err := Random(g.Cfg)
		if err != nil {
			return false
		}
		if tree.Validate() != nil {
			return false
		}
		if tree.NumEvents() != g.Cfg.Events {
			return false
		}
		for _, e := range tree.Events() {
			if e.Prob < g.Cfg.MinProb/1.000001 || e.Prob > g.Cfg.MaxProb*1.000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, genQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickNoSharingYieldsTreeShape: the NoSharing flag guarantees a
// strictly tree-shaped structure.
func TestQuickNoSharingYieldsTreeShape(t *testing.T) {
	property := func(g genConfig) bool {
		g.Cfg.NoSharing = true
		tree, err := Random(g.Cfg)
		if err != nil {
			return false
		}
		shaped, err := tree.IsTreeShaped()
		return err == nil && shaped
	}
	if err := quick.Check(property, genQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickAllEventsReachable: every generated event participates in
// the structure function (is reachable from the top).
func TestQuickAllEventsReachable(t *testing.T) {
	property := func(g genConfig) bool {
		tree, err := Random(g.Cfg)
		if err != nil {
			return false
		}
		order := tree.DFSEventOrder()
		// DFSEventOrder appends unreachable events last; reachability
		// means walking from the top already covered all of them, which
		// we verify by checking that failing all events trips the top
		// (monotone trees) and that the order is a full permutation.
		if len(order) != tree.NumEvents() {
			return false
		}
		failed := make(map[string]bool, len(order))
		for _, id := range order {
			failed[id] = true
		}
		topFails, err := tree.Eval(failed)
		return err == nil && topFails
	}
	if err := quick.Check(property, genQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickVotingGateThresholdsValid: voting gates always carry a
// threshold within 1..fan-in.
func TestQuickVotingGateThresholdsValid(t *testing.T) {
	property := func(g genConfig) bool {
		g.Cfg.VotingFrac = 0.6
		tree, err := Random(g.Cfg)
		if err != nil {
			return false
		}
		for _, gate := range tree.Gates() {
			if gate.Type != ft.GateVoting {
				continue
			}
			if gate.K < 1 || gate.K > len(gate.Inputs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, genQuickConfig()); err != nil {
		t.Error(err)
	}
}
