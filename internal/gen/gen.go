// Package gen builds fault-tree workloads: the paper's running example,
// classic literature trees, and seeded random trees with controlled
// shape. The random generator stands in for the authors' unpublished
// benchmark suite (see DESIGN.md, Substitutions): it exercises the same
// code paths with reproducible, parameterised instances.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"mpmcs4fta/internal/ft"
)

// FPS returns the Fire Protection System tree of the paper's Fig. 1,
// with the probabilities of Table I. Its MPMCS is {x1, x2} with joint
// probability 0.02.
func FPS() *ft.Tree {
	t := ft.New("FPS")
	events := []struct {
		id, desc string
		prob     float64
	}{
		{"x1", "Smoke sensor 1 fails", 0.2},
		{"x2", "Smoke sensor 2 fails", 0.1},
		{"x3", "No water supply", 0.001},
		{"x4", "Sprinkler nozzles blocked", 0.002},
		{"x5", "Automatic trigger fails", 0.05},
		{"x6", "Communication channel fails", 0.1},
		{"x7", "DDoS attack on control channel", 0.05},
	}
	for _, e := range events {
		mustAdd(t.AddEventDesc(e.id, e.desc, e.prob))
	}
	mustAdd(t.AddGate("detection", "Fire detection fails", ft.GateAnd, 0, "x1", "x2"))
	mustAdd(t.AddGate("remote", "Remote operation fails", ft.GateOr, 0, "x6", "x7"))
	mustAdd(t.AddGate("trigger", "Triggering system fails", ft.GateAnd, 0, "x5", "remote"))
	mustAdd(t.AddGate("suppression", "Fire suppression fails", ft.GateOr, 0, "x3", "x4", "trigger"))
	mustAdd(t.AddGate("top", "Fire protection system fails", ft.GateOr, 0, "detection", "suppression"))
	t.SetTop("top")
	return t
}

// PressureTank returns a classic pressure-tank rupture fault tree
// (after Vesely et al., Fault Tree Handbook), a standard benchmark with
// shared subsystems.
func PressureTank() *ft.Tree {
	t := ft.New("PressureTank")
	events := []struct {
		id, desc string
		prob     float64
	}{
		{"t1", "Tank rupture (material defect)", 1e-6},
		{"k1", "Relay K1 contacts stuck closed", 3e-5},
		{"k2", "Relay K2 contacts stuck closed", 3e-5},
		{"s1", "Pressure switch S1 stuck closed", 1e-4},
		{"s2", "Push switch S2 stuck closed", 1e-5},
		{"tm", "Timer relay stuck closed", 1e-4},
		{"op", "Operator fails to stop pump", 3e-3},
	}
	for _, e := range events {
		mustAdd(t.AddEventDesc(e.id, e.desc, e.prob))
	}
	// Tank ruptures if defective, or pump runs too long: K2 stuck, or
	// the control circuit keeps power: S1 stuck AND (both emergency
	// paths fail: operator+S2 path and timer+K1 path).
	mustAdd(t.AddGate("emergencyManual", "Manual shutdown fails", ft.GateOr, 0, "op", "s2"))
	mustAdd(t.AddGate("emergencyTimed", "Timed shutdown fails", ft.GateOr, 0, "tm", "k1"))
	mustAdd(t.AddGate("control", "Control circuit holds power", ft.GateAnd, 0, "s1", "emergencyManual", "emergencyTimed"))
	mustAdd(t.AddGate("pumpRuns", "Pump overruns", ft.GateOr, 0, "k2", "control"))
	mustAdd(t.AddGate("top", "Tank ruptures", ft.GateOr, 0, "t1", "pumpRuns"))
	t.SetTop("top")
	return t
}

// RedundantSCADA returns a cyber-physical tree featuring K-of-N voting
// gates (the operator named as future work in the paper): a plant trips
// when 2-of-3 sensor channels fail or the redundant control network and
// its backup both fail.
func RedundantSCADA() *ft.Tree {
	t := ft.New("RedundantSCADA")
	events := []struct {
		id, desc string
		prob     float64
	}{
		{"c1", "Sensor channel 1 fails", 0.01},
		{"c2", "Sensor channel 2 fails", 0.015},
		{"c3", "Sensor channel 3 fails", 0.02},
		{"n1", "Primary network switch fails", 0.005},
		{"n2", "Backup network switch fails", 0.008},
		{"ma", "Malware disables historian", 0.002},
		{"hw", "Controller hardware fault", 0.001},
		{"sw", "Controller firmware bug", 0.003},
	}
	for _, e := range events {
		mustAdd(t.AddEventDesc(e.id, e.desc, e.prob))
	}
	mustAdd(t.AddGate("sensors", "Sensor majority lost", ft.GateVoting, 2, "c1", "c2", "c3"))
	mustAdd(t.AddGate("network", "Control network lost", ft.GateAnd, 0, "n1", "n2"))
	mustAdd(t.AddGate("controller", "Controller fails", ft.GateOr, 0, "hw", "sw"))
	mustAdd(t.AddGate("cyber", "Cyber compromise", ft.GateOr, 0, "ma", "network"))
	mustAdd(t.AddGate("top", "Plant trip", ft.GateOr, 0, "sensors", "cyber", "controller"))
	t.SetTop("top")
	return t
}

// ReactorProtection returns a chemical-reactor overpressure protection
// tree in the HIPPS style: overpressure reaches the vessel when both
// the instrumented shutdown chain and the mechanical relief path fail.
// The shutdown chain uses a 2-of-3 pressure transmitter vote.
func ReactorProtection() *ft.Tree {
	t := ft.New("ReactorProtection")
	events := []struct {
		id, desc string
		prob     float64
	}{
		{"pt1", "Pressure transmitter 1 stuck", 0.02},
		{"pt2", "Pressure transmitter 2 stuck", 0.02},
		{"pt3", "Pressure transmitter 3 stuck", 0.02},
		{"ls", "Logic solver fails", 0.001},
		{"sv1", "Shutdown valve 1 fails to close", 0.01},
		{"sv2", "Shutdown valve 2 fails to close", 0.008},
		{"rv", "Relief valve stuck shut", 0.003},
		{"rd", "Rupture disc blocked", 0.0005},
	}
	for _, e := range events {
		mustAdd(t.AddEventDesc(e.id, e.desc, e.prob))
	}
	mustAdd(t.AddGate("sensing", "Pressure sensing lost", ft.GateVoting, 2, "pt1", "pt2", "pt3"))
	mustAdd(t.AddGate("valves", "Both shutdown valves fail", ft.GateAnd, 0, "sv1", "sv2"))
	mustAdd(t.AddGate("shutdown", "Instrumented shutdown fails", ft.GateOr, 0, "sensing", "ls", "valves"))
	mustAdd(t.AddGate("relief", "Mechanical relief fails", ft.GateAnd, 0, "rv", "rd"))
	mustAdd(t.AddGate("top", "Vessel overpressure", ft.GateAnd, 0, "shutdown", "relief"))
	t.SetTop("top")
	return t
}

// RailwayCrossing returns a level-crossing hazard tree: a train meets a
// road vehicle when the barrier is up while a train approaches — the
// detection path, the barrier path, or the warning path must fail, and
// the driver must also fail to notice.
func RailwayCrossing() *ft.Tree {
	t := ft.New("RailwayCrossing")
	events := []struct {
		id, desc string
		prob     float64
	}{
		{"tc1", "Track circuit 1 fails", 0.004},
		{"tc2", "Track circuit 2 fails", 0.006},
		{"ctl", "Crossing controller fault", 0.002},
		{"bm", "Barrier motor jams", 0.005},
		{"bs", "Barrier arm sheared", 0.001},
		{"wl", "Warning lights fail", 0.008},
		{"wb", "Warning bell fails", 0.012},
		{"dv", "Driver ignores crossing state", 0.05},
	}
	for _, e := range events {
		mustAdd(t.AddEventDesc(e.id, e.desc, e.prob))
	}
	mustAdd(t.AddGate("detection", "Train detection lost", ft.GateAnd, 0, "tc1", "tc2"))
	mustAdd(t.AddGate("barrier", "Barrier stays open", ft.GateOr, 0, "bm", "bs"))
	mustAdd(t.AddGate("warning", "All warnings silent", ft.GateAnd, 0, "wl", "wb"))
	mustAdd(t.AddGate("protection", "Crossing protection fails", ft.GateOr, 0, "detection", "ctl", "barrier", "warning"))
	mustAdd(t.AddGate("top", "Collision hazard", ft.GateAnd, 0, "protection", "dv"))
	t.SetTop("top")
	return t
}

func mustAdd(err error) {
	if err != nil {
		panic(fmt.Sprintf("gen: building a named tree failed: %v", err))
	}
}

// Config parameterises the random tree generator.
type Config struct {
	// Events is the number of basic events (leaves); must be ≥ 2.
	Events int
	// MaxFanIn bounds gate inputs (minimum 2, default 4).
	MaxFanIn int
	// AndBias is the probability that an internal gate is an AND gate
	// (default 0.4); the remainder are OR gates except VotingFrac.
	AndBias float64
	// VotingFrac is the fraction of gates that become K-of-N voting
	// gates when they have ≥ 3 inputs (default 0).
	VotingFrac float64
	// MinProb and MaxProb bound event probabilities (defaults 1e-4 and
	// 0.2); probabilities are drawn log-uniformly between them.
	MinProb, MaxProb float64
	// NoSharing forbids shared gates, producing a strictly tree-shaped
	// structure (required by e.g. quant.BottomUpProbability).
	NoSharing bool
	// Seed makes generation reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxFanIn < 2 {
		c.MaxFanIn = 4
	}
	if c.AndBias == 0 {
		c.AndBias = 0.4
	}
	if c.MinProb == 0 {
		c.MinProb = 1e-4
	}
	if c.MaxProb == 0 {
		c.MaxProb = 0.2
	}
	return c
}

// Random generates a random valid fault tree: a gate skeleton built
// top-down until every dangling input is backed by a basic event. The
// same Config always yields the same tree.
func Random(cfg Config) (*ft.Tree, error) {
	cfg = cfg.withDefaults()
	if cfg.Events < 2 {
		return nil, fmt.Errorf("gen: need at least 2 events, got %d", cfg.Events)
	}
	if cfg.MinProb <= 0 || cfg.MaxProb > 1 || cfg.MinProb > cfg.MaxProb {
		return nil, fmt.Errorf("gen: bad probability range [%v, %v]", cfg.MinProb, cfg.MaxProb)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := ft.New(fmt.Sprintf("random-%d-%d", cfg.Events, cfg.Seed))

	// Create the basic events with log-uniform probabilities.
	eventIDs := make([]string, cfg.Events)
	for i := range eventIDs {
		id := "e" + strconv.Itoa(i+1)
		eventIDs[i] = id
		prob := logUniform(rng, cfg.MinProb, cfg.MaxProb)
		if err := t.AddEvent(id, prob); err != nil {
			return nil, err
		}
	}

	// Build gates bottom-up: repeatedly group available nodes (events
	// first, then gates) under new gates until one root remains. This
	// yields a tree whose every gate is reachable and acyclic by
	// construction, with occasional sharing.
	available := append([]string(nil), eventIDs...)
	gateSeq := 0
	for len(available) > 1 {
		fanIn := 2 + rng.Intn(cfg.MaxFanIn-1)
		if fanIn > len(available) {
			fanIn = len(available)
		}
		inputs := make([]string, 0, fanIn)
		for i := 0; i < fanIn; i++ {
			pick := rng.Intn(len(available))
			inputs = append(inputs, available[pick])
			available[pick] = available[len(available)-1]
			available = available[:len(available)-1]
		}
		// Occasionally share an already-consumed node, making a DAG.
		if !cfg.NoSharing && gateSeq > 0 && rng.Float64() < 0.15 {
			shared := "g" + strconv.Itoa(1+rng.Intn(gateSeq))
			inputs = append(inputs, shared)
		}
		gateSeq++
		id := "g" + strconv.Itoa(gateSeq)
		var err error
		switch {
		case len(inputs) >= 3 && rng.Float64() < cfg.VotingFrac:
			k := 2 + rng.Intn(len(inputs)-1)
			err = t.AddVoting(id, k, inputs...)
		case rng.Float64() < cfg.AndBias:
			err = t.AddAnd(id, inputs...)
		default:
			err = t.AddOr(id, inputs...)
		}
		if err != nil {
			return nil, err
		}
		available = append(available, id)
	}
	t.SetTop(available[0])
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated tree invalid: %w", err)
	}
	return t, nil
}

// logUniform draws from [lo, hi] uniformly in log space, matching the
// wide spread of real-world failure probabilities.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	// Draw exponent uniformly: lo * (hi/lo)^u.
	u := rng.Float64()
	return lo * math.Pow(hi/lo, u)
}

// ModularConfig parameterises Modular: a tree with a known number of
// independent Dutuit–Rauzy modules, the ground-truth workload for
// decomposition tests and benchmarks.
type ModularConfig struct {
	// Modules is the number of independent subtrees under the top gate
	// (≥ 2). Each becomes a proper module of the combined tree.
	Modules int
	// EventsPerModule is the number of basic events in each module
	// (≥ 2).
	EventsPerModule int
	// TopAnd selects an AND top gate (all modules must fail) instead of
	// the default OR (any module suffices).
	TopAnd bool
	// MaxFanIn, AndBias, VotingFrac, MinProb and MaxProb shape each
	// module's internal structure exactly as in Config.
	MaxFanIn         int
	AndBias          float64
	VotingFrac       float64
	MinProb, MaxProb float64
	// Seed makes generation reproducible; module i is generated from
	// Seed+i.
	Seed int64
}

// Modular generates a tree of cfg.Modules independent random subtrees
// joined by one top gate. Every subtree's root is a module of the
// combined tree (its events and gates carry a per-module id prefix, so
// nothing is shared across module boundaries), giving decomposition
// tests and benchmarks a known module count to assert against.
func Modular(cfg ModularConfig) (*ft.Tree, error) {
	if cfg.Modules < 2 {
		return nil, fmt.Errorf("gen: need at least 2 modules, got %d", cfg.Modules)
	}
	if cfg.EventsPerModule < 2 {
		return nil, fmt.Errorf("gen: need at least 2 events per module, got %d", cfg.EventsPerModule)
	}
	t := ft.New(fmt.Sprintf("modular-%dx%d-%d", cfg.Modules, cfg.EventsPerModule, cfg.Seed))
	roots := make([]string, 0, cfg.Modules)
	for i := 0; i < cfg.Modules; i++ {
		sub, err := Random(Config{
			Events:     cfg.EventsPerModule,
			MaxFanIn:   cfg.MaxFanIn,
			AndBias:    cfg.AndBias,
			VotingFrac: cfg.VotingFrac,
			MinProb:    cfg.MinProb,
			MaxProb:    cfg.MaxProb,
			Seed:       cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		prefix := "m" + strconv.Itoa(i+1) + "_"
		for _, e := range sub.Events() {
			if err := t.AddEventDesc(prefix+e.ID, e.Description, e.Prob); err != nil {
				return nil, err
			}
		}
		for _, g := range sub.Gates() {
			inputs := make([]string, len(g.Inputs))
			for j, in := range g.Inputs {
				inputs[j] = prefix + in
			}
			if err := t.AddGate(prefix+g.ID, g.Description, g.Type, g.K, inputs...); err != nil {
				return nil, err
			}
		}
		roots = append(roots, prefix+sub.Top())
	}
	var err error
	if cfg.TopAnd {
		err = t.AddAnd("top", roots...)
	} else {
		err = t.AddOr("top", roots...)
	}
	if err != nil {
		return nil, err
	}
	t.SetTop("top")
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated modular tree invalid: %w", err)
	}
	return t, nil
}
