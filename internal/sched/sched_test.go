package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsAllTasks: every submitted task executes exactly once and
// Close joins them all.
func TestPoolRunsAllTasks(t *testing.T) {
	p := New(4)
	var ran atomic.Int64
	const n = 100
	for i := 0; i < n; i++ {
		if err := p.Submit(context.Background(), func(context.Context) {
			ran.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
}

// TestPoolConcurrency: with w workers, w long tasks run at the same
// time — the pool actually parallelises rather than serialising.
func TestPoolConcurrency(t *testing.T) {
	const w = 4
	p := New(w)
	defer p.Close()

	var mu sync.Mutex
	running, peak := 0, 0
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		err := p.Submit(context.Background(), func(context.Context) {
			defer wg.Done()
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			<-release
			mu.Lock()
			running--
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Give the workers a moment to all pick up their task.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := peak
		mu.Unlock()
		if got == w || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak != w {
		t.Fatalf("peak concurrency %d, want %d", peak, w)
	}
}

// TestSubmitAfterClose: Close flips the pool to rejecting.
func TestSubmitAfterClose(t *testing.T) {
	p := New(1)
	p.Close()
	err := p.Submit(context.Background(), func(context.Context) {})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestSubmitHonoursContextUnderBackpressure: when the queue is full and
// the submitter's context dies, Submit returns the context error
// instead of blocking forever.
func TestSubmitHonoursContextUnderBackpressure(t *testing.T) {
	p := New(1)
	defer p.Close()

	block := make(chan struct{})
	defer close(block)
	// Occupy the single worker, then fill the queue.
	if err := p.Submit(context.Background(), func(context.Context) { <-block }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Workers(); i++ {
		if err := p.Submit(context.Background(), func(context.Context) {}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.Submit(ctx, func(context.Context) {
			t.Error("rejected task must not run")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit did not return after cancellation under backpressure")
	}
}

// TestQueuedTaskStillRunsWhenCancelled: the exactly-once contract — a
// task whose context dies while it sits in the queue is still invoked
// (with the dead context), so callers counting completions never hang.
func TestQueuedTaskStillRunsWhenCancelled(t *testing.T) {
	p := New(1)
	block := make(chan struct{})
	if err := p.Submit(context.Background(), func(context.Context) { <-block }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	var sawCancel atomic.Bool
	if err := p.Submit(ctx, func(taskCtx context.Context) {
		ran.Store(true)
		sawCancel.Store(taskCtx.Err() != nil)
	}); err != nil {
		t.Fatal(err)
	}
	cancel() // dies while queued behind the blocked worker
	close(block)
	p.Close()
	if !ran.Load() {
		t.Fatal("accepted task never ran")
	}
	if !sawCancel.Load() {
		t.Fatal("task did not observe its cancelled context")
	}
}

// TestPoolNoGoroutineLeakUnderCancellation: the -race leak check. A
// pool whose batch is cancelled mid-flight and then closed must leave
// no worker or submitter goroutines behind.
func TestPoolNoGoroutineLeakUnderCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	for round := 0; round < 5; round++ {
		p := New(4)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Ignore result: either the task runs, is skipped, or
				// Submit aborts with ctx.Err — all fine; what matters is
				// that nothing is left running afterwards.
				_ = p.Submit(ctx, func(taskCtx context.Context) {
					select {
					case <-taskCtx.Done():
					case <-time.After(50 * time.Millisecond):
					}
				})
			}()
		}
		time.Sleep(5 * time.Millisecond)
		cancel()
		wg.Wait()
		p.Close()
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCarve: the deadline carving arithmetic.
func TestCarve(t *testing.T) {
	t.Run("no parent deadline", func(t *testing.T) {
		ctx, cancel := Carve(context.Background(), 0.5, time.Second)
		defer cancel()
		if _, ok := ctx.Deadline(); ok {
			t.Fatal("child grew a deadline from a deadline-less parent")
		}
	})

	t.Run("share of remaining", func(t *testing.T) {
		parent, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		child, childCancel := Carve(parent, 0.5, 0)
		defer childCancel()
		d, ok := child.Deadline()
		if !ok {
			t.Fatal("child has no deadline")
		}
		slice := time.Until(d)
		if slice < 20*time.Second || slice > 35*time.Second {
			t.Fatalf("slice %v, want ≈30s", slice)
		}
	})

	t.Run("floor applies but parent still caps", func(t *testing.T) {
		parent, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		child, childCancel := Carve(parent, 0.01, time.Minute)
		defer childCancel()
		d, _ := child.Deadline()
		pd, _ := parent.Deadline()
		if d.After(pd) {
			t.Fatalf("child deadline %v escapes parent %v", d, pd)
		}
		if time.Until(d) < 50*time.Millisecond {
			t.Fatalf("floor not applied: slice %v", time.Until(d))
		}
	})

	t.Run("degenerate shares clamp", func(t *testing.T) {
		parent, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for _, share := range []float64{-1, 0, 2} {
			child, childCancel := Carve(parent, share, 0)
			d, ok := child.Deadline()
			if !ok {
				t.Fatalf("share %v: no deadline", share)
			}
			pd, _ := parent.Deadline()
			if d.After(pd) {
				t.Fatalf("share %v: child deadline escapes parent", share)
			}
			childCancel()
		}
	})
}
