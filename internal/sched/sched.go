// Package sched provides the shared-budget batch scheduler underneath
// every multi-solve workload: a fixed pool of workers executes submitted
// tasks concurrently, so one worker budget covers a whole decomposition
// plan (internal/decomp), a fleet of instances (ftbench -fleet), or any
// future batch consumer — throughput is bounded by the budget the
// caller chose, never by how many tasks arrive.
//
// The pool is deliberately small in concept: Submit enqueues a task and
// applies backpressure when every worker is busy and the queue is full;
// Close drains in-flight work and joins the workers, so no goroutine
// outlives the pool. Cancellation is cooperative — a task receives the
// context it was submitted under and is expected to honour it; Submit
// itself aborts (instead of blocking forever) when that context dies
// while the queue is full.
//
// Deadline budgeting is a separate, composable concern: Carve derives a
// child context holding a share of the parent's remaining time, the
// mechanism by which a plan node or a fleet instance gets a bounded
// slice of the overall budget instead of starving its siblings.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sched: pool is closed")

// task pairs a unit of work with the context it was submitted under.
type task struct {
	ctx context.Context
	run func(context.Context)
}

// Pool is a fixed-size worker pool. Construct with New; the zero value
// is not usable.
type Pool struct {
	tasks chan task
	wg    sync.WaitGroup // joins the workers

	mu     sync.Mutex
	closed bool // guarded by mu
}

// New returns a running pool with the given number of workers; values
// below 1 select GOMAXPROCS. The queue holds one pending task per
// worker beyond the ones executing, so submitters feel backpressure
// rather than buffering unboundedly.
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan task, workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return cap(p.tasks) }

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		t.run(t.ctx)
	}
}

// Submit backoff bounds: the first retry comes quickly so a transient
// full queue costs almost nothing, then the wait doubles up to a cap
// that keeps sustained backpressure cheap (a handful of wakeups per
// millisecond-scale task) without adding meaningful submit latency.
const (
	submitBackoffMin = 50 * time.Microsecond
	submitBackoffMax = 5 * time.Millisecond
)

// Submit enqueues run to execute on a worker with ctx. It blocks while
// the queue is full and returns ctx's error if the context dies first —
// a cancelled batch stops submitting instead of wedging. Once Submit
// returns nil, run is invoked exactly once, even if ctx has since been
// cancelled — the task observes cancellation through its context, and
// callers can rely on one completion per accepted task for their own
// accounting. Returns ErrClosed after Close.
//
// Under sustained backpressure (queue full, every worker busy) Submit
// waits with capped exponential backoff on one reusable timer, so the
// hot submit path allocates a single timer per call instead of one per
// retry.
func (p *Pool) Submit(ctx context.Context, run func(context.Context)) error {
	t := task{ctx: ctx, run: run}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for wait := submitBackoffMin; ; {
		sent, err := p.tryReserve(t)
		if err != nil || sent {
			return err
		}
		// Queue full: back off outside the lock, watching the context.
		if timer == nil {
			timer = time.NewTimer(wait)
		} else {
			timer.Reset(wait)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		if wait < submitBackoffMax {
			wait *= 2
			if wait > submitBackoffMax {
				wait = submitBackoffMax
			}
		}
	}
}

// tryReserve makes one locked attempt to enqueue t: the send happens
// under the same mutex that guards Close's channel close, so a
// reserved send can never race a close(p.tasks). Returns (false, nil)
// when the queue is full.
func (p *Pool) tryReserve(t task) (sent bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, ErrClosed
	}
	select {
	case p.tasks <- t:
		return true, nil
	default:
		return false, nil
	}
}

// Close stops accepting tasks, waits for queued and in-flight tasks to
// finish, and joins the workers. Safe to call more than once;
// concurrent Submits return ErrClosed. Queued tasks whose context has
// been cancelled still run (and are expected to return promptly), so
// Close after a cancellation does not strand anyone waiting on a
// task's completion.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Carve derives a context holding a share of the parent's remaining
// deadline budget: share ∈ (0,1] of the time left, but never less than
// floor (so a node scheduled late still gets a workable slice — the
// parent deadline itself still caps it). A parent without a deadline
// yields a plain cancellable child: no budget to carve. The returned
// cancel must be called.
func Carve(ctx context.Context, share float64, floor time.Duration) (context.Context, context.CancelFunc) {
	deadline, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	if share <= 0 {
		share = 1
	} else if share > 1 {
		share = 1
	}
	remaining := time.Until(deadline)
	slice := time.Duration(float64(remaining) * share)
	if slice < floor {
		slice = floor
	}
	if slice > remaining {
		slice = remaining
	}
	return context.WithDeadline(ctx, time.Now().Add(slice))
}
