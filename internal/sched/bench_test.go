package sched

import (
	"context"
	"sync"
	"testing"
)

// BenchmarkSubmitUncontended measures the fast path: a slot is free and
// the reservation succeeds on the first locked attempt.
func BenchmarkSubmitUncontended(b *testing.B) {
	pool := New(2)
	defer pool.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		if err := pool.Submit(ctx, func(context.Context) { wg.Done() }); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkSubmitBackpressure measures the hot submit path the fixed
// 200µs time.After retry loop used to burn a timer allocation on:
// more producers than workers, queue permanently full, every Submit
// spinning through the backoff at least once. The per-op allocation
// count is the regression signal — one reusable timer per Submit call,
// not one per retry.
func BenchmarkSubmitBackpressure(b *testing.B) {
	pool := New(2)
	defer pool.Close()
	ctx := context.Background()

	// Saturate: occupy both workers and the whole queue with tasks that
	// each spin a little, so submitters keep colliding with a full
	// queue for the whole benchmark.
	var wg sync.WaitGroup
	busy := func(context.Context) {
		for i := 0; i < 2_000; i++ {
			_ = i * i
		}
		wg.Done()
	}
	const producers = 8
	b.ReportAllocs()
	b.ResetTimer()
	var pwg sync.WaitGroup
	per := b.N / producers
	extra := b.N - per*producers
	for p := 0; p < producers; p++ {
		n := per
		if p == 0 {
			n += extra
		}
		pwg.Add(1)
		go func(n int) {
			defer pwg.Done()
			for i := 0; i < n; i++ {
				wg.Add(1)
				if err := pool.Submit(ctx, busy); err != nil {
					b.Error(err)
					wg.Done()
					return
				}
			}
		}(n)
	}
	pwg.Wait()
	wg.Wait()
}
