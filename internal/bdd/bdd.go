// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with an accompanying zero-suppressed layer (ZDDs) for cut-set
// families. It provides the BDD-based baseline the paper names as future
// work: exact top-event probability, Rauzy-style minimal cut set
// extraction, and maximum-probability cut-set selection by dynamic
// programming over the cut-set family.
//
// BDD sizes are exponential in the worst case; SetNodeLimit installs a
// budget after which the guarded entry points (FromExpr, Restrict,
// MinimalCutSets) abort with ErrNodeLimit instead of exhausting memory.
package bdd

import (
	"errors"
	"fmt"
	"math"

	"mpmcs4fta/internal/boolexpr"
)

// ErrNodeLimit is returned by guarded operations when the manager's
// node budget (SetNodeLimit) is exhausted.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// DefaultNodeLimit is the budget the higher-level analyses install: it
// keeps worst-case memory in the hundreds of megabytes while leaving
// realistic fault trees far below the ceiling.
const DefaultNodeLimit = 2 << 20

// nodeLimitPanic is the internal signal converted to ErrNodeLimit at
// the package boundary.
type nodeLimitPanic struct{}

// Ref identifies a BDD node within a Manager. The terminals False and
// True are shared by all managers.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable order position; terminals use maxLevel
	lo, hi Ref
}

const maxLevel = int32(1<<30 - 1)

type triple struct {
	level  int32
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// Manager owns BDD (and ZDD) nodes over a fixed variable order.
// Managers are not safe for concurrent use.
type Manager struct {
	order    []string
	varIndex map[string]int

	nodes  []node
	unique map[triple]Ref
	ite    map[iteKey]Ref

	// ZDD state (see zdd.go).
	znodes  []node
	zunique map[triple]ZRef
	zcache  map[zopKey]ZRef

	// nodeLimit bounds len(nodes)+len(znodes); 0 means unlimited.
	nodeLimit int
}

// SetNodeLimit installs a budget on the total number of BDD+ZDD nodes.
// When exceeded, guarded operations return ErrNodeLimit. Zero removes
// the limit.
func (m *Manager) SetNodeLimit(limit int) { m.nodeLimit = limit }

func (m *Manager) checkLimit() {
	if m.nodeLimit > 0 && len(m.nodes)+len(m.znodes) > m.nodeLimit {
		panic(nodeLimitPanic{})
	}
}

// guard converts a nodeLimitPanic escaping fn into ErrNodeLimit.
func guard(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(nodeLimitPanic); ok {
			*err = ErrNodeLimit
			return
		}
		panic(r)
	}
}

// NewManager creates a manager with the given variable order (first
// element = topmost decision variable).
func NewManager(order []string) (*Manager, error) {
	m := &Manager{
		order:    append([]string(nil), order...),
		varIndex: make(map[string]int, len(order)),
		unique:   make(map[triple]Ref),
		ite:      make(map[iteKey]Ref),
		zunique:  make(map[triple]ZRef),
		zcache:   make(map[zopKey]ZRef),
	}
	for i, name := range order {
		if _, dup := m.varIndex[name]; dup {
			return nil, fmt.Errorf("bdd: duplicate variable %q in order", name)
		}
		m.varIndex[name] = i
	}
	// Slots 0 and 1 are the terminals for both node spaces.
	m.nodes = []node{{level: maxLevel}, {level: maxLevel}}
	m.znodes = []node{{level: maxLevel}, {level: maxLevel}}
	return m, nil
}

// Order returns the variable order.
func (m *Manager) Order() []string { return append([]string(nil), m.order...) }

// NumNodes returns the total number of allocated BDD nodes, including
// the two terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Var returns the BDD for the given variable.
func (m *Manager) Var(name string) (Ref, error) {
	idx, ok := m.varIndex[name]
	if !ok {
		return False, fmt.Errorf("bdd: variable %q not in order", name)
	}
	return m.mk(int32(idx), False, True), nil
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rule lo==hi and hash-consing.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := triple{level: level, lo: lo, hi: hi}
	if ref, ok := m.unique[key]; ok {
		return ref
	}
	m.checkLimit()
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	ref := Ref(len(m.nodes) - 1)
	m.unique[key] = ref
	return ref
}

// ITE computes if-then-else(f, g, h), the universal ternary operator.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := iteKey{f: f, g: g, h: h}
	if ref, ok := m.ite[key]; ok {
		return ref
	}
	level := m.nodes[f].level
	if l := m.nodes[g].level; l < level {
		level = l
	}
	if l := m.nodes[h].level; l < level {
		level = l
	}
	fl, fh := m.cofactors(f, level)
	gl, gh := m.cofactors(g, level)
	hl, hh := m.cofactors(h, level)
	lo := m.ITE(fl, gl, hl)
	hi := m.ITE(fh, gh, hh)
	ref := m.mk(level, lo, hi)
	m.ite[key] = ref
	return ref
}

func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns the conjunction of the given functions.
func (m *Manager) And(fs ...Ref) Ref {
	out := True
	for _, f := range fs {
		out = m.ITE(out, f, False)
	}
	return out
}

// Or returns the disjunction of the given functions.
func (m *Manager) Or(fs ...Ref) Ref {
	out := False
	for _, f := range fs {
		out = m.ITE(out, True, f)
	}
	return out
}

// AtLeast returns the function "at least k of fs are true".
func (m *Manager) AtLeast(k int, fs []Ref) Ref {
	type key struct{ i, j int }
	memo := make(map[key]Ref)
	var t func(i, j int) Ref
	t = func(i, j int) Ref {
		rest := len(fs) - i
		switch {
		case j <= 0:
			return True
		case j > rest:
			return False
		}
		kk := key{i, j}
		if r, ok := memo[kk]; ok {
			return r
		}
		with := m.ITE(fs[i], t(i+1, j-1), False)
		without := t(i+1, j)
		r := m.Or(with, without)
		memo[kk] = r
		return r
	}
	return t(0, k)
}

// FromExpr compiles a Boolean expression. Every variable must be present
// in the manager's order. It returns ErrNodeLimit when the node budget
// is exhausted.
func (m *Manager) FromExpr(e boolexpr.Expr) (ref Ref, err error) {
	defer guard(&err)
	return m.fromExpr(e)
}

func (m *Manager) fromExpr(e boolexpr.Expr) (Ref, error) {
	switch x := e.(type) {
	case boolexpr.Var:
		return m.Var(x.Name)
	case boolexpr.Not:
		inner, err := m.fromExpr(x.X)
		if err != nil {
			return False, err
		}
		return m.Not(inner), nil
	case boolexpr.And:
		out := True
		for _, c := range x.Xs {
			f, err := m.fromExpr(c)
			if err != nil {
				return False, err
			}
			out = m.And(out, f)
		}
		return out, nil
	case boolexpr.Or:
		out := False
		for _, c := range x.Xs {
			f, err := m.fromExpr(c)
			if err != nil {
				return False, err
			}
			out = m.Or(out, f)
		}
		return out, nil
	case boolexpr.AtLeast:
		fs := make([]Ref, len(x.Xs))
		for i, c := range x.Xs {
			f, err := m.fromExpr(c)
			if err != nil {
				return False, err
			}
			fs[i] = f
		}
		return m.AtLeast(x.K, fs), nil
	case boolexpr.Const:
		if x.B {
			return True, nil
		}
		return False, nil
	}
	return False, fmt.Errorf("bdd: unknown expression type %T", e)
}

// Eval evaluates f under the assignment (missing variables read false).
func (m *Manager) Eval(f Ref, assign map[string]bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[m.order[n.level]] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// Restrict fixes variable name to value in f.
func (m *Manager) Restrict(f Ref, name string, value bool) (Ref, error) {
	idx, ok := m.varIndex[name]
	if !ok {
		return False, fmt.Errorf("bdd: variable %q not in order", name)
	}
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(g Ref) Ref {
		if g == True || g == False {
			return g
		}
		n := m.nodes[g]
		if n.level > int32(idx) {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		var out Ref
		if n.level == int32(idx) {
			if value {
				out = n.hi
			} else {
				out = n.lo
			}
		} else {
			out = m.mk(n.level, walk(n.lo), walk(n.hi))
		}
		memo[g] = out
		return out
	}
	return walk(f), nil
}

// Probability computes P[f = true] when each variable is independently
// true with the given probability (Shannon expansion with memoisation).
// Variables missing from probs default to probability 0.
func (m *Manager) Probability(f Ref, probs map[string]float64) float64 {
	memo := make(map[Ref]float64)
	var walk func(Ref) float64
	walk = func(g Ref) float64 {
		switch g {
		case True:
			return 1
		case False:
			return 0
		}
		if p, ok := memo[g]; ok {
			return p
		}
		n := m.nodes[g]
		p := probs[m.order[n.level]]
		out := p*walk(n.hi) + (1-p)*walk(n.lo)
		memo[g] = out
		return out
	}
	return walk(f)
}

// CountNodes returns the number of nodes reachable from f, excluding
// terminals.
func (m *Manager) CountNodes(f Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		walk(m.nodes[g].lo)
		walk(m.nodes[g].hi)
	}
	walk(f)
	return len(seen)
}

// SatCount returns the number of satisfying assignments of f over the
// manager's full variable set.
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var walk func(g Ref, level int32) float64
	walk = func(g Ref, level int32) float64 {
		nLevel := m.nodes[g].level
		if g == True || g == False {
			nLevel = int32(len(m.order))
		}
		scale := math.Pow(2, float64(nLevel-level))
		switch g {
		case True:
			return scale
		case False:
			return 0
		}
		if c, ok := memo[g]; ok {
			return c * scale
		}
		n := m.nodes[g]
		count := walk(n.lo, n.level+1) + walk(n.hi, n.level+1)
		memo[g] = count
		return count * scale
	}
	return walk(f, 0)
}
