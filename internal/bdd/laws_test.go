package bdd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpmcs4fta/internal/boolexpr"
)

// genRefs is a quick.Generator producing a manager with two random
// functions over a fixed variable set.
type genRefs struct {
	M    *Manager
	F, G Ref
}

// Generate implements quick.Generator.
func (genRefs) Generate(r *rand.Rand, _ int) reflect.Value {
	order := []string{"v0", "v1", "v2", "v3", "v4"}
	m, err := NewManager(order)
	if err != nil {
		panic(err)
	}
	cfg := boolexpr.RandomConfig{NumVars: 5, MaxDepth: 4, MaxFanIn: 3, AllowNot: true, AllowAtLeast: true}
	f, err := m.FromExpr(boolexpr.Random(r, cfg))
	if err != nil {
		panic(err)
	}
	g, err := m.FromExpr(boolexpr.Random(r, cfg))
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(genRefs{M: m, F: f, G: g})
}

func bddQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(151))}
}

// TestQuickBooleanLaws: canonical BDDs make algebraic laws literal
// pointer equalities.
func TestQuickBooleanLaws(t *testing.T) {
	property := func(g genRefs) bool {
		m, f, h := g.M, g.F, g.G
		if m.And(f, h) != m.And(h, f) {
			return false // commutativity
		}
		if m.Or(f, h) != m.Or(h, f) {
			return false
		}
		if m.And(f, f) != f || m.Or(f, f) != f {
			return false // idempotence
		}
		if m.And(f, m.Or(f, h)) != f {
			return false // absorption
		}
		if m.Or(f, m.And(f, h)) != f {
			return false
		}
		if m.Not(m.And(f, h)) != m.Or(m.Not(f), m.Not(h)) {
			return false // De Morgan
		}
		if m.And(f, m.Not(f)) != False || m.Or(f, m.Not(f)) != True {
			return false // complement
		}
		if m.ITE(f, h, h) != h {
			return false // redundant test
		}
		return true
	}
	if err := quick.Check(property, bddQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickShannonExpansion: f = (x ∧ f|x=1) ∨ (¬x ∧ f|x=0) for every
// variable.
func TestQuickShannonExpansion(t *testing.T) {
	property := func(g genRefs) bool {
		m, f := g.M, g.F
		for _, name := range m.Order() {
			x, err := m.Var(name)
			if err != nil {
				return false
			}
			hi, err := m.Restrict(f, name, true)
			if err != nil {
				return false
			}
			lo, err := m.Restrict(f, name, false)
			if err != nil {
				return false
			}
			rebuilt := m.Or(m.And(x, hi), m.And(m.Not(x), lo))
			if rebuilt != f {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, bddQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickProbabilityBounds: probabilities stay in [0,1] and respect
// union/intersection bounds.
func TestQuickProbabilityBounds(t *testing.T) {
	property := func(g genRefs, seed int64) bool {
		m := g.M
		rng := rand.New(rand.NewSource(seed))
		probs := make(map[string]float64)
		for _, v := range m.Order() {
			probs[v] = rng.Float64()
		}
		pf := m.Probability(g.F, probs)
		pg := m.Probability(g.G, probs)
		pAnd := m.Probability(m.And(g.F, g.G), probs)
		pOr := m.Probability(m.Or(g.F, g.G), probs)
		const eps = 1e-9
		if pf < -eps || pf > 1+eps {
			return false
		}
		if pAnd > pf+eps || pAnd > pg+eps {
			return false
		}
		if pOr < pf-eps || pOr < pg-eps {
			return false
		}
		// Inclusion-exclusion, exact for BDD probabilities.
		return abs(pOr-(pf+pg-pAnd)) < 1e-9
	}
	if err := quick.Check(property, bddQuickConfig()); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestQuickSatCountConsistency: SatCount(f) + SatCount(¬f) covers the
// whole space.
func TestQuickSatCountConsistency(t *testing.T) {
	property := func(g genRefs) bool {
		m := g.M
		total := float64(int64(1) << uint(len(m.Order())))
		return m.SatCount(g.F)+m.SatCount(m.Not(g.F)) == total
	}
	if err := quick.Check(property, bddQuickConfig()); err != nil {
		t.Error(err)
	}
}
