package bdd

import (
	"math"
	"sort"
)

// ZRef identifies a ZDD node within a Manager. ZDDs canonically encode
// families of variable sets: a path to ⊤ includes exactly the variables
// taken through hi edges (skipped variables are absent, per the
// zero-suppression rule).
type ZRef int32

// ZDD terminals: ZEmpty is the empty family {}, ZBase is the family
// containing only the empty set {∅}.
const (
	ZEmpty ZRef = 0
	ZBase  ZRef = 1
)

type zopKey struct {
	op   uint8
	a, b ZRef
}

const (
	zopUnion uint8 = iota + 1
	zopWithout
)

// zmk returns the canonical ZDD node, applying the zero-suppression
// rule (hi == ZEmpty collapses to lo).
func (m *Manager) zmk(level int32, lo, hi ZRef) ZRef {
	if hi == ZEmpty {
		return lo
	}
	key := triple{level: level, lo: Ref(lo), hi: Ref(hi)}
	if ref, ok := m.zunique[key]; ok {
		return ref
	}
	m.checkLimit()
	m.znodes = append(m.znodes, node{level: level, lo: Ref(lo), hi: Ref(hi)})
	ref := ZRef(len(m.znodes) - 1)
	m.zunique[key] = ref
	return ref
}

// ZUnion returns the family union a ∪ b.
func (m *Manager) ZUnion(a, b ZRef) ZRef {
	switch {
	case a == ZEmpty:
		return b
	case b == ZEmpty:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := zopKey{op: zopUnion, a: a, b: b}
	if r, ok := m.zcache[key]; ok {
		return r
	}
	na, nb := m.znodes[a], m.znodes[b]
	var out ZRef
	switch {
	case a == ZBase:
		out = m.zmk(nb.level, m.ZUnion(ZBase, ZRef(nb.lo)), ZRef(nb.hi))
	case b == ZBase:
		out = m.zmk(na.level, m.ZUnion(ZRef(na.lo), ZBase), ZRef(na.hi))
	case na.level < nb.level:
		out = m.zmk(na.level, m.ZUnion(ZRef(na.lo), b), ZRef(na.hi))
	case na.level > nb.level:
		out = m.zmk(nb.level, m.ZUnion(a, ZRef(nb.lo)), ZRef(nb.hi))
	default:
		out = m.zmk(na.level, m.ZUnion(ZRef(na.lo), ZRef(nb.lo)), m.ZUnion(ZRef(na.hi), ZRef(nb.hi)))
	}
	m.zcache[key] = out
	return out
}

// ZWithout returns the sets of u that are not supersets of any set in v
// (Rauzy's "without" / subsume-difference operator on monotone
// families).
func (m *Manager) ZWithout(u, v ZRef) ZRef {
	switch {
	case v == ZEmpty:
		return u
	case v == ZBase:
		// ∅ ∈ v subsumes every set.
		return ZEmpty
	case u == ZEmpty:
		return ZEmpty
	case u == ZBase:
		// ∅ ⊇ T only for T = ∅; v may contain ∅ deep in its lo-chain
		// (unions built during the recursion are not antichains).
		if m.zHasEmpty(v) {
			return ZEmpty
		}
		return ZBase
	case u == v:
		return ZEmpty
	}
	key := zopKey{op: zopWithout, a: u, b: v}
	if r, ok := m.zcache[key]; ok {
		return r
	}
	nu, nv := m.znodes[u], m.znodes[v]
	var out ZRef
	switch {
	case nu.level == nv.level:
		// Sets with x must avoid subsuming both x-free sets (v.lo) and
		// x-sets (v.hi, compared on the remainder); x-free sets only
		// compete with v.lo.
		hi := m.ZWithout(ZRef(nu.hi), m.ZUnion(ZRef(nv.lo), ZRef(nv.hi)))
		lo := m.ZWithout(ZRef(nu.lo), ZRef(nv.lo))
		out = m.zmk(nu.level, lo, hi)
	case nu.level < nv.level:
		// u's top variable x does not occur in v; v-sets constrain both
		// branches on the remainder.
		hi := m.ZWithout(ZRef(nu.hi), v)
		lo := m.ZWithout(ZRef(nu.lo), v)
		out = m.zmk(nu.level, lo, hi)
	default:
		// v's top variable does not occur in u: v-sets containing it
		// can never be subsets of u-sets.
		out = m.ZWithout(u, ZRef(nv.lo))
	}
	m.zcache[key] = out
	return out
}

// zHasEmpty reports whether ∅ belongs to the family: following lo edges
// (every variable absent) must reach ZBase.
func (m *Manager) zHasEmpty(f ZRef) bool {
	for f != ZEmpty && f != ZBase {
		f = ZRef(m.znodes[f].lo)
	}
	return f == ZBase
}

// ZSingleton returns the family {{name}}.
func (m *Manager) ZSingleton(level int32) ZRef {
	return m.zmk(level, ZEmpty, ZBase)
}

// ZCount returns the number of sets in the family.
func (m *Manager) ZCount(f ZRef) int64 {
	memo := make(map[ZRef]int64)
	var walk func(ZRef) int64
	walk = func(g ZRef) int64 {
		switch g {
		case ZEmpty:
			return 0
		case ZBase:
			return 1
		}
		if c, ok := memo[g]; ok {
			return c
		}
		n := m.znodes[g]
		c := walk(ZRef(n.lo)) + walk(ZRef(n.hi))
		memo[g] = c
		return c
	}
	return walk(f)
}

// ZSets enumerates the family as sorted string slices, in a
// deterministic order. Use only on families of manageable size.
func (m *Manager) ZSets(f ZRef) [][]string {
	var (
		out     [][]string
		current []string
	)
	var walk func(ZRef)
	walk = func(g ZRef) {
		switch g {
		case ZEmpty:
			return
		case ZBase:
			set := append([]string(nil), current...)
			sort.Strings(set)
			out = append(out, set)
			return
		}
		n := m.znodes[g]
		walk(ZRef(n.lo))
		current = append(current, m.order[n.level])
		walk(ZRef(n.hi))
		current = current[:len(current)-1]
	}
	walk(f)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// ZBestSet returns the set with the maximum product of per-variable
// probabilities, together with that probability. It is the BDD-side
// MPMCS: dynamic programming over the family, O(nodes). The empty
// family yields (nil, 0).
func (m *Manager) ZBestSet(f ZRef, probs map[string]float64) ([]string, float64) {
	if f == ZEmpty {
		return nil, 0
	}
	type entry struct {
		prob float64
		hi   bool // whether the best path takes the hi edge
	}
	memo := make(map[ZRef]entry)
	var walk func(ZRef) float64
	walk = func(g ZRef) float64 {
		switch g {
		case ZEmpty:
			return math.Inf(-1)
		case ZBase:
			return 1
		}
		if e, ok := memo[g]; ok {
			return e.prob
		}
		n := m.znodes[g]
		loProb := walk(ZRef(n.lo))
		hiProb := walk(ZRef(n.hi)) * probs[m.order[n.level]]
		e := entry{prob: loProb, hi: false}
		if hiProb > loProb {
			e = entry{prob: hiProb, hi: true}
		}
		memo[g] = e
		return e.prob
	}
	best := walk(f)

	var set []string
	g := f
	for g != ZBase && g != ZEmpty {
		n := m.znodes[g]
		if memo[g].hi {
			set = append(set, m.order[n.level])
			g = ZRef(n.hi)
		} else {
			g = ZRef(n.lo)
		}
	}
	sort.Strings(set)
	return set, best
}

// MinimalCutSets computes the family of minimal solutions (prime
// implicants of a monotone function): Rauzy's algorithm translated to
// the ZDD family representation. The input BDD must be monotone
// (fault-tree structure functions are); on non-monotone inputs the
// result is unspecified. It returns ErrNodeLimit when the manager's
// node budget is exhausted.
func (m *Manager) MinimalCutSets(f Ref) (out ZRef, err error) {
	defer guard(&err)
	return m.minimalCutSets(f), nil
}

func (m *Manager) minimalCutSets(f Ref) ZRef {
	memo := make(map[Ref]ZRef)
	var walk func(Ref) ZRef
	walk = func(g Ref) ZRef {
		switch g {
		case False:
			return ZEmpty
		case True:
			return ZBase
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := m.nodes[g]
		k0 := walk(n.lo)
		k1 := walk(n.hi)
		// Cut sets through x: minimal solutions of the hi cofactor not
		// already achievable without x.
		k1p := m.ZWithout(k1, k0)
		out := m.zmk(n.level, k0, k1p)
		memo[g] = out
		return out
	}
	return walk(f)
}
