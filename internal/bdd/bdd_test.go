package bdd

import (
	"math"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/boolexpr"
)

func fpsExpr() boolexpr.Expr {
	return boolexpr.NewOr(
		boolexpr.NewAnd(boolexpr.V("x1"), boolexpr.V("x2")),
		boolexpr.NewOr(
			boolexpr.V("x3"),
			boolexpr.V("x4"),
			boolexpr.NewAnd(boolexpr.V("x5"), boolexpr.NewOr(boolexpr.V("x6"), boolexpr.V("x7"))),
		),
	)
}

var fpsProbs = map[string]float64{
	"x1": 0.2, "x2": 0.1, "x3": 0.001, "x4": 0.002,
	"x5": 0.05, "x6": 0.1, "x7": 0.05,
}

func TestNewManagerDuplicateVar(t *testing.T) {
	if _, err := NewManager([]string{"a", "a"}); err == nil {
		t.Error("duplicate variable accepted")
	}
}

func TestVarUnknown(t *testing.T) {
	m, err := NewManager([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Var("zz"); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestBasicOperations(t *testing.T) {
	m, err := NewManager([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.Var("a")
	b, _ := m.Var("b")

	and := m.And(a, b)
	or := m.Or(a, b)
	notA := m.Not(a)

	tests := []struct {
		name   string
		f      Ref
		assign map[string]bool
		want   bool
	}{
		{"and tt", and, map[string]bool{"a": true, "b": true}, true},
		{"and tf", and, map[string]bool{"a": true}, false},
		{"or ft", or, map[string]bool{"b": true}, true},
		{"or ff", or, map[string]bool{}, false},
		{"not f", notA, map[string]bool{}, true},
		{"not t", notA, map[string]bool{"a": true}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Eval(tt.f, tt.assign); got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}

	// Canonicity: equal functions share node ids.
	if m.And(a, b) != and || m.Or(b, a) != or {
		t.Error("hash consing failed for repeated operations")
	}
	if m.Not(m.Not(a)) != a {
		t.Error("double negation is not identity")
	}
	if m.And(a, m.Not(a)) != False || m.Or(a, m.Not(a)) != True {
		t.Error("complement laws fail")
	}
}

func TestFromExprAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cfg := boolexpr.DefaultRandomConfig()
	cfg.NumVars = 6
	cfg.AllowConst = true
	order := []string{"v0", "v1", "v2", "v3", "v4", "v5"}
	for trial := 0; trial < 150; trial++ {
		e := boolexpr.Random(rng, cfg)
		m, err := NewManager(order)
		if err != nil {
			t.Fatal(err)
		}
		f, err := m.FromExpr(e)
		if err != nil {
			t.Fatal(err)
		}
		boolexpr.AllAssignments(order, func(assign map[string]bool) bool {
			if m.Eval(f, assign) != e.Eval(assign) {
				t.Fatalf("trial %d: BDD and expression disagree under %v for %v", trial, assign, e)
			}
			return true
		})
	}
}

func TestAtLeastBDD(t *testing.T) {
	order := []string{"a", "b", "c", "d"}
	m, err := NewManager(order)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]Ref, 4)
	for i, name := range order {
		refs[i], _ = m.Var(name)
	}
	for k := 0; k <= 5; k++ {
		f := m.AtLeast(k, refs)
		boolexpr.AllAssignments(order, func(assign map[string]bool) bool {
			count := 0
			for _, name := range order {
				if assign[name] {
					count++
				}
			}
			if m.Eval(f, assign) != (count >= k) {
				t.Fatalf("atleast(%d) wrong under %v", k, assign)
			}
			return true
		})
	}
}

func TestRestrict(t *testing.T) {
	m, _ := NewManager([]string{"a", "b"})
	a, _ := m.Var("a")
	b, _ := m.Var("b")
	f := m.And(a, b)
	r, err := m.Restrict(f, "a", true)
	if err != nil {
		t.Fatal(err)
	}
	if r != b {
		t.Error("restrict(a&b, a=1) should equal b")
	}
	r, _ = m.Restrict(f, "a", false)
	if r != False {
		t.Error("restrict(a&b, a=0) should be false")
	}
	if _, err := m.Restrict(f, "zz", true); err == nil {
		t.Error("unknown variable accepted")
	}
}

// expectedProbability computes P[e] by exhaustive weighted enumeration.
func expectedProbability(e boolexpr.Expr, vars []string, probs map[string]float64) float64 {
	total := 0.0
	boolexpr.AllAssignments(vars, func(assign map[string]bool) bool {
		if !e.Eval(assign) {
			return true
		}
		p := 1.0
		for _, v := range vars {
			if assign[v] {
				p *= probs[v]
			} else {
				p *= 1 - probs[v]
			}
		}
		total += p
		return true
	})
	return total
}

func TestProbabilityFPS(t *testing.T) {
	vars := []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	m, err := NewManager(vars)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.FromExpr(fpsExpr())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Probability(f, fpsProbs)
	want := expectedProbability(fpsExpr(), vars, fpsProbs)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Probability = %v, want %v", got, want)
	}
}

func TestProbabilityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	cfg := boolexpr.DefaultRandomConfig()
	cfg.NumVars = 5
	order := []string{"v0", "v1", "v2", "v3", "v4"}
	for trial := 0; trial < 60; trial++ {
		e := boolexpr.Random(rng, cfg)
		probs := make(map[string]float64, len(order))
		for _, v := range order {
			probs[v] = rng.Float64()
		}
		m, _ := NewManager(order)
		f, err := m.FromExpr(e)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Probability(f, probs)
		want := expectedProbability(e, order, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Probability = %v, want %v", trial, got, want)
		}
	}
}

func TestSatCount(t *testing.T) {
	m, _ := NewManager([]string{"a", "b", "c"})
	a, _ := m.Var("a")
	b, _ := m.Var("b")
	tests := []struct {
		name string
		f    Ref
		want float64
	}{
		{"true", True, 8},
		{"false", False, 0},
		{"var", a, 4},
		{"and", m.And(a, b), 2},
		{"or", m.Or(a, b), 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.SatCount(tt.f); got != tt.want {
				t.Errorf("SatCount = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCountNodes(t *testing.T) {
	m, _ := NewManager([]string{"a", "b"})
	a, _ := m.Var("a")
	b, _ := m.Var("b")
	if n := m.CountNodes(m.And(a, b)); n != 2 {
		t.Errorf("CountNodes(a&b) = %d, want 2", n)
	}
	if n := m.CountNodes(True); n != 0 {
		t.Errorf("CountNodes(true) = %d, want 0", n)
	}
	if m.NumNodes() < 4 {
		t.Errorf("NumNodes = %d", m.NumNodes())
	}
}

func TestOrderCopied(t *testing.T) {
	order := []string{"a", "b"}
	m, _ := NewManager(order)
	got := m.Order()
	got[0] = "zzz"
	if m.Order()[0] != "a" {
		t.Error("Order exposes internal storage")
	}
}
