package bdd

import (
	"container/heap"
	"math"
	"sort"
)

// RankedSet is one entry of a ZTopSets enumeration.
type RankedSet struct {
	Set  []string
	Prob float64
}

// ZTopSets returns the k highest-probability sets of the family in
// exact descending order (ties broken arbitrarily but
// deterministically). It runs best-first search over the ZDD guided by
// the exact completion bound from a ZBestSet-style DP, so the cost is
// O(k · depth · log frontier) after one O(nodes) pass — no enumeration
// of the whole family.
func (m *Manager) ZTopSets(f ZRef, probs map[string]float64, k int) []RankedSet {
	if k <= 0 || f == ZEmpty {
		return nil
	}

	// best[g] = maximum achievable probability from node g downwards.
	best := make(map[ZRef]float64)
	var bound func(ZRef) float64
	bound = func(g ZRef) float64 {
		switch g {
		case ZEmpty:
			return math.Inf(-1)
		case ZBase:
			return 1
		}
		if b, ok := best[g]; ok {
			return b
		}
		n := m.znodes[g]
		b := math.Max(bound(ZRef(n.lo)), bound(ZRef(n.hi))*probs[m.order[n.level]])
		best[g] = b
		return b
	}
	bound(f)

	// Best-first search: a state is a position in the ZDD plus the
	// variables chosen so far; priority = prefix probability × bound.
	type state struct {
		node   ZRef
		prefix float64
		chosen []string
	}
	pq := &rankedQueue{}
	push := func(s state) {
		var b float64
		switch s.node {
		case ZEmpty:
			return
		case ZBase:
			b = 1
		default:
			b = best[s.node]
		}
		heap.Push(pq, rankedItem{state: s, priority: s.prefix * b})
	}
	push(state{node: f, prefix: 1})

	var out []RankedSet
	for pq.Len() > 0 && len(out) < k {
		item := heap.Pop(pq).(rankedItem)
		s := item.state.(state)
		if s.node == ZBase {
			set := append([]string(nil), s.chosen...)
			sort.Strings(set)
			out = append(out, RankedSet{Set: set, Prob: s.prefix})
			continue
		}
		n := m.znodes[s.node]
		push(state{node: ZRef(n.lo), prefix: s.prefix, chosen: s.chosen})
		name := m.order[n.level]
		push(state{
			node:   ZRef(n.hi),
			prefix: s.prefix * probs[name],
			chosen: append(append([]string(nil), s.chosen...), name),
		})
	}
	return out
}

type rankedItem struct {
	state    interface{}
	priority float64
}

// rankedQueue is a max-heap over rankedItem priorities.
type rankedQueue []rankedItem

func (q rankedQueue) Len() int            { return len(q) }
func (q rankedQueue) Less(i, j int) bool  { return q[i].priority > q[j].priority }
func (q rankedQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *rankedQueue) Push(x interface{}) { *q = append(*q, x.(rankedItem)) }
func (q *rankedQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
