package bdd

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mpmcs4fta/internal/boolexpr"
)

func fpsCutFamily(t *testing.T) (*Manager, ZRef) {
	t.Helper()
	vars := []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	m, err := NewManager(vars)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.FromExpr(fpsExpr())
	if err != nil {
		t.Fatal(err)
	}
	family, err := m.MinimalCutSets(f)
	if err != nil {
		t.Fatal(err)
	}
	return m, family
}

func TestZTopSetsFPS(t *testing.T) {
	m, family := fpsCutFamily(t)
	ranked := m.ZTopSets(family, fpsProbs, 10)
	wantSets := [][]string{
		{"x1", "x2"},
		{"x5", "x6"},
		{"x5", "x7"},
		{"x4"},
		{"x3"},
	}
	wantProbs := []float64{0.02, 0.005, 0.0025, 0.002, 0.001}
	if len(ranked) != 5 {
		t.Fatalf("got %d sets, want 5", len(ranked))
	}
	for i, r := range ranked {
		if !reflect.DeepEqual(r.Set, wantSets[i]) {
			t.Errorf("rank %d: %v, want %v", i+1, r.Set, wantSets[i])
		}
		if math.Abs(r.Prob-wantProbs[i]) > 1e-12 {
			t.Errorf("rank %d: prob %v, want %v", i+1, r.Prob, wantProbs[i])
		}
	}
}

func TestZTopSetsTruncation(t *testing.T) {
	m, family := fpsCutFamily(t)
	ranked := m.ZTopSets(family, fpsProbs, 2)
	if len(ranked) != 2 {
		t.Fatalf("got %d sets, want 2", len(ranked))
	}
	if ranked[0].Prob < ranked[1].Prob {
		t.Error("ranking not descending")
	}
	if got := m.ZTopSets(family, fpsProbs, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := m.ZTopSets(ZEmpty, fpsProbs, 3); got != nil {
		t.Error("empty family should return nil")
	}
}

func TestZTopSetsMatchesExhaustiveRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	cfg := boolexpr.RandomConfig{NumVars: 6, MaxDepth: 4, MaxFanIn: 3, AllowAtLeast: true}
	order := []string{"v0", "v1", "v2", "v3", "v4", "v5"}
	for trial := 0; trial < 40; trial++ {
		e := boolexpr.Random(rng, cfg)
		probs := make(map[string]float64, len(order))
		for _, v := range order {
			probs[v] = 0.01 + 0.98*rng.Float64()
		}
		m, _ := NewManager(order)
		f, err := m.FromExpr(e)
		if err != nil {
			t.Fatal(err)
		}
		family, err := m.MinimalCutSets(f)
		if err != nil {
			t.Fatal(err)
		}
		all := m.ZSets(family)
		wantProbs := make([]float64, 0, len(all))
		for _, set := range all {
			p := 1.0
			for _, v := range set {
				p *= probs[v]
			}
			wantProbs = append(wantProbs, p)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(wantProbs)))

		ranked := m.ZTopSets(family, probs, len(all)+2)
		if len(ranked) != len(all) {
			t.Fatalf("trial %d: enumerated %d, family has %d", trial, len(ranked), len(all))
		}
		for i, r := range ranked {
			if math.Abs(r.Prob-wantProbs[i]) > 1e-12 {
				t.Fatalf("trial %d rank %d: prob %v, want %v", trial, i+1, r.Prob, wantProbs[i])
			}
		}
	}
}
