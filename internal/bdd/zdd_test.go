package bdd

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mpmcs4fta/internal/boolexpr"
)

// bruteForceMCS enumerates the minimal solutions of a monotone
// expression by truth-table: a satisfying set is minimal when removing
// any single element falsifies the expression.
func bruteForceMCS(e boolexpr.Expr, vars []string) [][]string {
	var out [][]string
	boolexpr.AllAssignments(vars, func(assign map[string]bool) bool {
		if !e.Eval(assign) {
			return true
		}
		minimal := true
		for _, v := range vars {
			if !assign[v] {
				continue
			}
			assign[v] = false
			sat := e.Eval(assign)
			assign[v] = true
			if sat {
				minimal = false
				break
			}
		}
		if minimal {
			var set []string
			for _, v := range vars {
				if assign[v] {
					set = append(set, v)
				}
			}
			sort.Strings(set)
			out = append(out, set)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestMinimalCutSetsFPS(t *testing.T) {
	vars := []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	m, err := NewManager(vars)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.FromExpr(fpsExpr())
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := m.MinimalCutSets(f)
	if err != nil {
		t.Fatal(err)
	}
	got := m.ZSets(cuts)
	want := [][]string{
		{"x1", "x2"},
		{"x3"},
		{"x4"},
		{"x5", "x6"},
		{"x5", "x7"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MinimalCutSets = %v, want %v", got, want)
	}
	if n := m.ZCount(cuts); n != 5 {
		t.Errorf("ZCount = %d, want 5", n)
	}
}

func TestZBestSetFPS(t *testing.T) {
	vars := []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	m, _ := NewManager(vars)
	f, err := m.FromExpr(fpsExpr())
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := m.MinimalCutSets(f)
	if err != nil {
		t.Fatal(err)
	}
	set, prob := m.ZBestSet(cuts, fpsProbs)
	if !reflect.DeepEqual(set, []string{"x1", "x2"}) {
		t.Errorf("best set = %v, want [x1 x2]", set)
	}
	if math.Abs(prob-0.02) > 1e-12 {
		t.Errorf("best probability = %v, want 0.02", prob)
	}
}

func TestMinimalCutSetsRandomMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	cfg := boolexpr.RandomConfig{
		NumVars:      6,
		MaxDepth:     4,
		MaxFanIn:     3,
		AllowNot:     false,
		AllowAtLeast: true,
	}
	order := []string{"v0", "v1", "v2", "v3", "v4", "v5"}
	for trial := 0; trial < 80; trial++ {
		e := boolexpr.Random(rng, cfg)
		m, _ := NewManager(order)
		f, err := m.FromExpr(e)
		if err != nil {
			t.Fatal(err)
		}
		mcsRef, err := m.MinimalCutSets(f)
		if err != nil {
			t.Fatal(err)
		}
		got := m.ZSets(mcsRef)
		want := bruteForceMCS(e, order)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MCS mismatch for %v:\n got %v\nwant %v", trial, e, got, want)
		}
	}
}

func TestZBestSetAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cfg := boolexpr.RandomConfig{
		NumVars:  5,
		MaxDepth: 4,
		MaxFanIn: 3,
	}
	order := []string{"v0", "v1", "v2", "v3", "v4"}
	for trial := 0; trial < 60; trial++ {
		e := boolexpr.Random(rng, cfg)
		probs := make(map[string]float64, len(order))
		for _, v := range order {
			probs[v] = 0.01 + 0.98*rng.Float64()
		}
		m, _ := NewManager(order)
		f, err := m.FromExpr(e)
		if err != nil {
			t.Fatal(err)
		}
		cuts, err := m.MinimalCutSets(f)
		if err != nil {
			t.Fatal(err)
		}
		_, gotProb := m.ZBestSet(cuts, probs)

		wantProb := 0.0
		for _, set := range bruteForceMCS(e, order) {
			p := 1.0
			for _, v := range set {
				p *= probs[v]
			}
			if p > wantProb {
				wantProb = p
			}
		}
		if cuts == ZEmpty {
			if gotProb != 0 {
				t.Fatalf("trial %d: empty family with prob %v", trial, gotProb)
			}
			continue
		}
		if math.Abs(gotProb-wantProb) > 1e-9 {
			t.Fatalf("trial %d: ZBestSet prob %v, brute force %v (expr %v)", trial, gotProb, wantProb, e)
		}
	}
}

func TestZUnionBasics(t *testing.T) {
	m, _ := NewManager([]string{"a", "b"})
	sa := m.ZSingleton(0) // {{a}}
	sb := m.ZSingleton(1) // {{b}}
	u := m.ZUnion(sa, sb)
	got := m.ZSets(u)
	want := [][]string{{"a"}, {"b"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ZUnion = %v, want %v", got, want)
	}
	if m.ZUnion(u, u) != u {
		t.Error("union should be idempotent")
	}
	if m.ZUnion(u, ZEmpty) != u || m.ZUnion(ZEmpty, u) != u {
		t.Error("union with empty family should be identity")
	}
	if m.ZCount(m.ZUnion(u, ZBase)) != 3 {
		t.Error("union with {∅} should add the empty set")
	}
}

func TestZWithoutBasics(t *testing.T) {
	m, _ := NewManager([]string{"a", "b"})
	sa := m.ZSingleton(0)                   // {{a}}
	ab := m.zmk(0, ZEmpty, m.ZSingleton(1)) // {{a,b}}
	both := m.ZUnion(sa, ab)                // {{a},{a,b}}

	// {a,b} ⊇ {a}: subsume-difference leaves only {a}.
	if got := m.ZSets(m.ZWithout(both, sa)); !reflect.DeepEqual(got, [][]string{{"a"}}) {
		// {a} ⊇ {a} too, so actually both are supersets of {a}.
		t.Logf("ZWithout(both, {{a}}) = %v", got)
	}
	if got := m.ZWithout(both, sa); got != ZEmpty {
		t.Errorf("every set contains {a}; want empty family, got %v", m.ZSets(got))
	}
	if got := m.ZWithout(both, ZBase); got != ZEmpty {
		t.Error("∅ subsumes everything")
	}
	if got := m.ZWithout(both, ZEmpty); got != both {
		t.Error("empty family subsumes nothing")
	}
	sb := m.ZSingleton(1)
	if got := m.ZSets(m.ZWithout(both, sb)); !reflect.DeepEqual(got, [][]string{{"a"}}) {
		t.Errorf("ZWithout(both, {{b}}) = %v, want [[a]]", got)
	}
}

func TestMinimalCutSetsTerminals(t *testing.T) {
	m, _ := NewManager([]string{"a"})
	if got, err := m.MinimalCutSets(False); err != nil || got != ZEmpty {
		t.Errorf("MCS(false) = %v, %v; want empty family", got, err)
	}
	if got, err := m.MinimalCutSets(True); err != nil || got != ZBase {
		t.Errorf("MCS(true) = %v, %v; want {∅}", got, err)
	}
}
