package mpmcs4fta

// Guards the observability acceptance criterion: with no tracer
// configured, Analyze must run at the same speed as with an explicit
// no-op tracer — the disabled instrumentation path costs nothing
// measurable (< 5% on the FPS pipeline).

import (
	"context"
	"testing"
	"time"

	"mpmcs4fta/internal/obs"
)

// analyzeBatch runs iters sequential analyses and returns the elapsed
// wall time.
func analyzeBatch(tb testing.TB, opts Options, iters int) time.Duration {
	tb.Helper()
	ctx := context.Background()
	tree := ExampleFPS()
	start := time.Now()
	for i := 0; i < iters; i++ {
		sol, err := Analyze(ctx, tree, opts)
		if err != nil {
			tb.Fatal(err)
		}
		if sol.Probability < 0.0199 || sol.Probability > 0.0201 {
			tb.Fatalf("wrong answer: %v", sol.Probability)
		}
	}
	return time.Since(start)
}

// TestNopTracerOverheadGuard compares Analyze with Options zero value
// (tracer unset) against an explicitly-set no-op tracer. Timing noise
// is absorbed by taking the best of several trials and allowing a few
// attempts: a real regression fails every round, scheduler jitter does
// not.
func TestNopTracerOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	base := Options{Sequential: true}
	nop := Options{Sequential: true, Tracer: obs.Nop()}
	const iters = 40

	analyzeBatch(t, base, iters) // warm up caches and the allocator
	analyzeBatch(t, nop, iters)

	var lastBase, lastNop time.Duration
	for attempt := 0; attempt < 4; attempt++ {
		baseBest, nopBest := time.Duration(1<<62), time.Duration(1<<62)
		for trial := 0; trial < 5; trial++ {
			if d := analyzeBatch(t, base, iters); d < baseBest {
				baseBest = d
			}
			if d := analyzeBatch(t, nop, iters); d < nopBest {
				nopBest = d
			}
		}
		lastBase, lastNop = baseBest, nopBest
		if float64(nopBest) <= 1.05*float64(baseBest) {
			return
		}
	}
	t.Errorf("no-op tracer overhead above 5%%: baseline %v, nop tracer %v per %d analyses",
		lastBase, lastNop, iters)
}

// TestNopBusOverheadGuard is the event-bus analogue: solver telemetry
// hooks are compiled into the hot paths unconditionally, so the guard
// compares the disabled bus (nil Options.Bus, the default) against an
// enabled idle bus. If even the enabled-with-no-subscribers path stays
// within 5%, the disabled path — a nil-receiver check per publish
// site — certainly does; a regression in either direction (hooks that
// got expensive, or a default-on bus sneaking in) fails every attempt.
func TestNopBusOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	base := Options{Sequential: true} // bus disabled: the default path
	withBus := func() Options { return Options{Sequential: true, Bus: NewEventBus()} }
	const iters = 40

	analyzeBatch(t, base, iters) // warm up caches and the allocator
	analyzeBatch(t, withBus(), iters)

	var lastBase, lastBus time.Duration
	for attempt := 0; attempt < 4; attempt++ {
		baseBest, busBest := time.Duration(1<<62), time.Duration(1<<62)
		for trial := 0; trial < 5; trial++ {
			if d := analyzeBatch(t, base, iters); d < baseBest {
				baseBest = d
			}
			if d := analyzeBatch(t, withBus(), iters); d < busBest {
				busBest = d
			}
		}
		lastBase, lastBus = baseBest, busBest
		if float64(busBest) <= 1.05*float64(baseBest) {
			return
		}
	}
	t.Errorf("event bus overhead above 5%%: disabled %v, enabled idle bus %v per %d analyses",
		lastBase, lastBus, iters)
}

// TestDisabledBusZeroAlloc pins the stronger half of the contract
// directly: publishing into a nil bus and observing into a nil
// histogram must not allocate at all.
func TestDisabledBusZeroAlloc(t *testing.T) {
	var bus *obs.EventBus
	var h *obs.Histogram
	if n := testing.AllocsPerRun(1000, func() {
		if bus.Enabled() {
			bus.Publish(obs.Heartbeat{Conflicts: 1})
		}
		h.Observe(3.5)
	}); n != 0 {
		t.Errorf("disabled telemetry path allocates %.1f times per publish, want 0", n)
	}
}

// BenchmarkAnalyzeTracing reports the cost of each tracing mode on the
// FPS pipeline; "none" and "nop" must coincide, "json" shows the price
// of recording.
func BenchmarkAnalyzeTracing(b *testing.B) {
	modes := []struct {
		name string
		opts func() Options
	}{
		{"none", func() Options { return Options{Sequential: true} }},
		{"nop", func() Options { return Options{Sequential: true, Tracer: obs.Nop()} }},
		{"json", func() Options { return Options{Sequential: true, Tracer: NewJSONTracer()} }},
		{"bus", func() Options { return Options{Sequential: true, Bus: NewEventBus()} }},
	}
	ctx := context.Background()
	tree := ExampleFPS()
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(ctx, tree, mode.opts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
